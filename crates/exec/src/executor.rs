//! Device-dispatching executor.
//!
//! An [`Executor`] binds a [`Device`] to concrete kernel implementations and
//! charges the simulated GPU its offload overhead on every kernel call —
//! which is exactly what makes small query-time workloads slower on the GPU
//! (paper §7.4.2) while large ETL workloads win big.

use crate::device::{Device, GpuProfile};
use crate::kernels;
use crate::matrix::Matrix;
use crate::pool::WorkerPool;

/// Executes DeepLens compute kernels on a chosen device.
#[derive(Debug, Clone)]
pub struct Executor {
    device: Device,
    gpu: GpuProfile,
}

impl Executor {
    /// Executor for `device` with the default GPU profile.
    pub fn new(device: Device) -> Self {
        Executor {
            device,
            gpu: GpuProfile::default(),
        }
    }

    /// Executor with an explicit GPU overhead profile.
    pub fn with_gpu_profile(device: Device, gpu: GpuProfile) -> Self {
        Executor { device, gpu }
    }

    /// The device this executor runs on.
    pub fn device(&self) -> Device {
        self.device
    }

    /// All-pairs Euclidean threshold join between two feature matrices:
    /// returns `(row_in_a, row_in_b)` for every pair within `tau`.
    pub fn threshold_join(&self, a: &Matrix, b: &Matrix, tau: f32) -> Vec<(u32, u32)> {
        match self.device {
            Device::Cpu => kernels::threshold_join_scalar(a, b, tau),
            Device::Avx => kernels::threshold_join_vectorized(a, b, tau),
            Device::ParallelCpu(_) => {
                kernels::threshold_join_parallel(a, b, tau, self.device.resolved_threads())
            }
            Device::GpuSim => {
                self.gpu.pay_overhead(a.byte_size() + b.byte_size());
                kernels::threshold_join_parallel(a, b, tau, self.gpu.workers)
            }
        }
    }

    /// Batched all-pairs threshold join: one distance pass over `a × b`
    /// serves every threshold in `taus`, returning one pair vector per
    /// entry (the multi-query-optimization kernel behind `QueryBatch`).
    ///
    /// Each member's result is bit-identical to [`Executor::threshold_join`]
    /// at that threshold alone — the distance expression is shared, only the
    /// comparison fans out. On the simulated GPU the launch + transfer
    /// overhead is paid **once for the whole batch**, which is exactly the
    /// amortization that makes offloaded batches win where single queries
    /// lose to the overhead (paper §7.4.2).
    pub fn threshold_join_multi(
        &self,
        a: &Matrix,
        b: &Matrix,
        taus: &[f32],
    ) -> Vec<Vec<(u32, u32)>> {
        match self.device {
            Device::Cpu => kernels::threshold_join_multi_scalar(a, b, taus),
            Device::Avx => kernels::threshold_join_multi_vectorized(a, b, taus),
            Device::ParallelCpu(_) => {
                kernels::threshold_join_multi_parallel(a, b, taus, self.device.resolved_threads())
            }
            Device::GpuSim => {
                self.gpu.pay_overhead(a.byte_size() + b.byte_size());
                kernels::threshold_join_multi_parallel(a, b, taus, self.gpu.workers)
            }
        }
    }

    /// Euclidean distances from `query` to every row of `m` (the kNN /
    /// feature-scoring batch kernel).
    pub fn distances(&self, m: &Matrix, query: &[f32]) -> Vec<f32> {
        match self.device {
            Device::Cpu => kernels::distances_scalar(m, query),
            Device::Avx => kernels::distances_vectorized(m, query),
            Device::ParallelCpu(_) => {
                kernels::distances_parallel(m, query, self.device.resolved_threads())
            }
            Device::GpuSim => {
                self.gpu.pay_overhead(m.byte_size() + query.len() * 4);
                kernels::distances_parallel(m, query, self.gpu.workers)
            }
        }
    }

    /// The neural-network-inference stand-in: a stack of 3×3 conv + ReLU
    /// layers over a luma plane. Returns the final activation plane.
    pub fn conv_stack(&self, plane: &[f32], w: usize, h: usize, layers: usize) -> Vec<f32> {
        match self.device {
            Device::Cpu => kernels::conv_stack_scalar(plane, w, h, layers),
            Device::Avx => kernels::conv_stack_vectorized(plane, w, h, layers),
            Device::ParallelCpu(_) => {
                // Same occupancy guard as the GPU path: row-sharding only
                // pays off once each worker gets a real band.
                let workers = self.device.resolved_threads().min(h / 16).max(1);
                kernels::conv_stack_parallel(plane, w, h, layers, workers)
            }
            Device::GpuSim => {
                self.gpu.pay_overhead(plane.len() * 4 * 2);
                // Row-sharding only pays off when each worker gets a real
                // band; tiny planes run near-serial (occupancy limit).
                let workers = self.gpu.workers.min(h / 16).max(1);
                kernels::conv_stack_parallel(plane, w, h, layers, workers)
            }
        }
    }

    /// Batched inference: one conv stack per plane. The GPU pays a single
    /// launch + transfer for the whole batch (streaming inference), which is
    /// why it dominates the ETL phase.
    pub fn conv_stack_batch(
        &self,
        planes: &[(Vec<f32>, usize, usize)],
        layers: usize,
    ) -> Vec<Vec<f32>> {
        match self.device {
            Device::Cpu => planes
                .iter()
                .map(|(p, w, h)| kernels::conv_stack_scalar(p, *w, *h, layers))
                .collect(),
            Device::Avx => planes
                .iter()
                .map(|(p, w, h)| kernels::conv_stack_vectorized(p, *w, *h, layers))
                .collect(),
            Device::ParallelCpu(_) => {
                Self::conv_batch_parallel(planes, layers, self.device.resolved_threads())
            }
            Device::GpuSim => {
                let bytes: usize = planes.iter().map(|(p, _, _)| p.len() * 4 * 2).sum();
                self.gpu.pay_overhead(bytes);
                Self::conv_batch_parallel(planes, layers, self.gpu.workers)
            }
        }
    }

    /// Batch-level parallelism shared by the multi-core CPU and simulated
    /// GPU: workers claim morsels of whole planes.
    fn conv_batch_parallel(
        planes: &[(Vec<f32>, usize, usize)],
        layers: usize,
        workers: usize,
    ) -> Vec<Vec<f32>> {
        let pool = WorkerPool::new(workers);
        pool.run_morsels(planes.len(), pool.morsel_size(planes.len()), |r| {
            planes[r]
                .iter()
                .map(|(p, w, h)| kernels::conv_stack_vectorized(p, *w, *h, layers))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Histogram of `values` into `bins` cells over `[lo, hi)`.
    pub fn histogram(&self, values: &[f32], bins: usize, lo: f32, hi: f32) -> Vec<u32> {
        match self.device {
            Device::Cpu | Device::Avx => kernels::histogram_scalar(values, bins, lo, hi),
            Device::ParallelCpu(_) => {
                kernels::histogram_parallel(values, bins, lo, hi, self.device.resolved_threads())
            }
            Device::GpuSim => {
                self.gpu.pay_overhead(values.len() * 4);
                kernels::histogram_parallel(values, bins, lo, hi, self.gpu.workers)
            }
        }
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new(Device::Avx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f32 / (1u64 << 31) as f32 * 10.0
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
    }

    #[test]
    fn devices_agree_on_results() {
        let a = mat(40, 12, 5);
        let b = mat(50, 12, 6);
        let mut base = Executor::new(Device::Cpu).threshold_join(&a, &b, 8.0);
        base.sort_unstable();
        for dev in [
            Device::Avx,
            Device::ParallelCpu(0),
            Device::ParallelCpu(1),
            Device::ParallelCpu(5),
            Device::GpuSim,
        ] {
            let mut got = Executor::new(dev).threshold_join(&a, &b, 8.0);
            got.sort_unstable();
            assert_eq!(base, got, "device {dev:?} result mismatch");
        }
    }

    #[test]
    fn multi_join_matches_single_join_per_tau_on_every_device() {
        let a = mat(35, 12, 11);
        let b = mat(45, 12, 12);
        let taus = [2.0f32, 8.0, 5.0, 8.0]; // duplicates and out-of-order on purpose
        for dev in [
            Device::Cpu,
            Device::Avx,
            Device::ParallelCpu(1),
            Device::ParallelCpu(4),
            Device::GpuSim,
        ] {
            let exec = Executor::new(dev);
            let multi = exec.threshold_join_multi(&a, &b, &taus);
            assert_eq!(multi.len(), taus.len());
            for (q, &tau) in taus.iter().enumerate() {
                assert_eq!(
                    multi[q],
                    exec.threshold_join(&a, &b, tau),
                    "device {dev:?} member {q} (tau {tau}) diverged from single issuance"
                );
            }
        }
    }

    #[test]
    fn multi_join_empty_batch_and_empty_inputs() {
        let a = mat(5, 4, 1);
        let b = mat(0, 4, 2);
        let exec = Executor::new(Device::Avx);
        assert!(exec.threshold_join_multi(&a, &a, &[]).is_empty());
        let res = exec.threshold_join_multi(&a, &b, &[1.0, 2.0]);
        assert_eq!(res, vec![Vec::new(), Vec::new()]);
    }

    #[test]
    fn gpu_batch_pays_one_overhead_for_k_members() {
        // K queries batched through the simulated GPU pay the launch +
        // transfer cost once; issued one at a time they pay it K times.
        let profile = GpuProfile {
            launch_overhead: Duration::from_millis(2),
            bandwidth_gib_s: 8.0,
            workers: 2,
        };
        let a = mat(16, 8, 3);
        let b = mat(16, 8, 4);
        let gpu = Executor::with_gpu_profile(Device::GpuSim, profile);
        let taus = [1.0f32, 2.0, 3.0, 4.0];

        let t0 = Instant::now();
        let batched = gpu.threshold_join_multi(&a, &b, &taus);
        let batch_time = t0.elapsed();

        let t1 = Instant::now();
        let serial: Vec<_> = taus
            .iter()
            .map(|&t| gpu.threshold_join(&a, &b, t))
            .collect();
        let serial_time = t1.elapsed();

        assert_eq!(batched, serial);
        assert!(
            batch_time < serial_time,
            "batch must amortize the offload overhead ({batch_time:?} vs {serial_time:?})"
        );
        assert!(
            serial_time >= Duration::from_millis(8),
            "4 launches at 2ms each"
        );
    }

    #[test]
    fn distances_device_agnostic() {
        let m = mat(64, 16, 9);
        let q: Vec<f32> = mat(1, 16, 10).row(0).to_vec();
        let base = Executor::new(Device::Cpu).distances(&m, &q);
        for dev in [Device::Avx, Device::ParallelCpu(3), Device::GpuSim] {
            let got = Executor::new(dev).distances(&m, &q);
            assert_eq!(base.len(), got.len());
            for (x, y) in base.iter().zip(&got) {
                assert!((x - y).abs() < 1e-3, "device {dev:?} distance mismatch");
            }
        }
    }

    #[test]
    fn parallel_cpu_pays_no_offload_overhead() {
        // Unlike the GPU, the parallel backend has no launch/transfer model:
        // a tiny input runs inline (single morsel) and completes quickly.
        let a = mat(2, 4, 1);
        let b = mat(2, 4, 2);
        let t0 = Instant::now();
        let _ = Executor::new(Device::ParallelCpu(8)).threshold_join(&a, &b, 1.0);
        assert!(t0.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn gpu_pays_overhead_on_tiny_input() {
        let profile = GpuProfile {
            launch_overhead: Duration::from_millis(2),
            bandwidth_gib_s: 8.0,
            workers: 4,
        };
        let a = mat(2, 4, 1);
        let b = mat(2, 4, 2);
        let cpu = Executor::new(Device::Cpu);
        let gpu = Executor::with_gpu_profile(Device::GpuSim, profile);

        let t0 = Instant::now();
        let _ = cpu.threshold_join(&a, &b, 1.0);
        let cpu_time = t0.elapsed();

        let t1 = Instant::now();
        let _ = gpu.threshold_join(&a, &b, 1.0);
        let gpu_time = t1.elapsed();

        assert!(
            gpu_time > cpu_time && gpu_time >= Duration::from_millis(2),
            "tiny workload must be slower on the simulated GPU ({cpu_time:?} vs {gpu_time:?})"
        );
    }

    #[test]
    fn conv_batch_matches_sequential() {
        let planes: Vec<(Vec<f32>, usize, usize)> = (0..5)
            .map(|s| {
                (
                    (0..20 * 16).map(|i| ((i * (s + 3)) % 50) as f32).collect(),
                    20,
                    16,
                )
            })
            .collect();
        let cpu = Executor::new(Device::Cpu).conv_stack_batch(&planes, 2);
        let gpu = Executor::new(Device::GpuSim).conv_stack_batch(&planes, 2);
        assert_eq!(cpu.len(), gpu.len());
        for (c, g) in cpu.iter().zip(&gpu) {
            for (x, y) in c.iter().zip(g) {
                assert!((x - y).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn histogram_device_agnostic() {
        let values: Vec<f32> = (0..5000).map(|i| (i % 100) as f32).collect();
        let a = Executor::new(Device::Cpu).histogram(&values, 10, 0.0, 100.0);
        let b = Executor::new(Device::GpuSim).histogram(&values, 10, 0.0, 100.0);
        assert_eq!(a, b);
    }
}
