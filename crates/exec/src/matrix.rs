//! Dense row-major `f32` matrices.
//!
//! Feature sets (one row per patch) are the unit of work handed to the
//! execution kernels.

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Matrix { rows, cols, data }
    }

    /// Build from a slice of equal-length row vectors.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let cols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must share a length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The flat buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Total payload bytes (for the transfer cost model).
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_rows() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.byte_size(), 24);
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "buffer does not match shape")]
    fn shape_mismatch_panics() {
        Matrix::from_vec(2, 2, vec![0.0; 5]);
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix::from_rows(&[]);
        assert_eq!(m.rows(), 0);
        assert_eq!(m.byte_size(), 0);
    }
}
