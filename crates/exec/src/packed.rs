//! Packed-form compute kernels: threshold joins, distance batches, and
//! dedup probes over flat feature blocks.
//!
//! The kernels in [`crate::kernels`] consume dense [`crate::Matrix`]
//! operands — every row materialized, fixed stride, no nulls. These kernels
//! consume [`PackedBlock`]s instead: the chunk-at-a-time form the columnar
//! scan layer decodes (one flat `f32` buffer per chunk plus a `rows + 1`
//! offset table and optional validity flags), so a `scan → join` plan can
//! hand surviving feature chunks straight to the join without materializing
//! whole patch rows first.
//!
//! **Correctness bar**: output is byte-identical to the row-path operators
//! (nested-loop / Ball-Tree similarity join over materialized rows). That
//! pins two things:
//!
//! * the distance expression is exactly the row path's `sq_euclidean`
//!   (4-lane accumulation, identical operation order — replicated here
//!   because `deeplens-exec` sits below `deeplens-index` in the dependency
//!   graph), compared with the same `d² <= τ²` predicate;
//! * null (featureless) rows are skipped pair-wise, matching how the
//!   nested join skips patches without features, and pairs come back
//!   sorted, matching the Ball-Tree join's contract.
//!
//! Parallelism is morsel-driven over blocks with in-order reassembly, so
//! every kernel is byte-identical across thread counts.

use crate::pool::WorkerPool;

/// One block of feature rows for the packed kernels: a flat value buffer,
/// per-row spans into it, optional validity, and the output index of the
/// block's first row.
///
/// A block is typically one surviving chunk of a columnar scan: `values` /
/// `offsets` / `valid` borrow the chunk's decoded packed form, and `base`
/// places the block's rows in the filtered output row space (so emitted
/// pair indices match a join over the materialized scan result).
#[derive(Debug, Clone, Copy)]
pub struct PackedBlock<'a> {
    values: &'a [f32],
    /// Per-row prefix offsets, `rows + 1` entries.
    offsets: &'a [u32],
    /// Per-row validity; `None` means every row is valid.
    valid: Option<&'a [bool]>,
    /// Output index of row 0.
    base: u32,
}

impl<'a> PackedBlock<'a> {
    /// Wrap a decoded chunk. `offsets` must hold `rows + 1` monotone
    /// entries bounded by `values.len()`; `valid`, when present, one flag
    /// per row.
    pub fn new(
        values: &'a [f32],
        offsets: &'a [u32],
        valid: Option<&'a [bool]>,
        base: u32,
    ) -> Self {
        assert!(!offsets.is_empty(), "offsets must hold rows + 1 entries");
        assert!(
            *offsets.last().expect("non-empty") as usize <= values.len(),
            "offsets exceed the value buffer"
        );
        if let Some(v) = valid {
            assert_eq!(v.len(), offsets.len() - 1, "one validity flag per row");
        }
        PackedBlock {
            values,
            offsets,
            valid,
            base,
        }
    }

    /// Rows in the block (valid + null).
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Output index of row 0.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Row `i`'s feature vector, `None` for a null row.
    #[inline]
    pub fn row(&self, i: usize) -> Option<&'a [f32]> {
        if self.valid.is_some_and(|v| !v[i]) {
            return None;
        }
        Some(&self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize])
    }
}

/// Squared Euclidean distance, replicating `deeplens_index::dist::
/// sq_euclidean` operation for operation: 4-lane accumulation then a scalar
/// tail. The packed kernels must produce bit-identical distances to the
/// row-path join operators, which all funnel through that expression.
#[inline]
fn sq_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        for lane in 0..4 {
            let d = a[i * 4 + lane] - b[i * 4 + lane];
            acc[lane] += d * d;
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Packed-form threshold join: all `(left_out, right_out)` pairs whose
/// feature rows lie within Euclidean distance `tau`, sorted. Null rows on
/// either side are skipped pair-wise, exactly like the row-path nested
/// join skips featureless patches.
///
/// Left blocks shard over `pool` as morsels and reassemble in block order,
/// so the output is byte-identical across thread counts.
pub fn packed_threshold_join(
    left: &[PackedBlock],
    right: &[PackedBlock],
    tau: f32,
    pool: &WorkerPool,
) -> Vec<(u32, u32)> {
    let tau_sq = tau * tau;
    let mut out: Vec<(u32, u32)> = pool
        .run_morsels(left.len(), pool.morsel_size(left.len()), |range| {
            let mut part = Vec::new();
            for bi in range {
                let lb = &left[bi];
                for i in 0..lb.rows() {
                    let Some(lf) = lb.row(i) else {
                        continue;
                    };
                    for rb in right {
                        for j in 0..rb.rows() {
                            let Some(rf) = rb.row(j) else {
                                continue;
                            };
                            if sq_euclidean(lf, rf) <= tau_sq {
                                part.push((lb.base + i as u32, rb.base + j as u32));
                            }
                        }
                    }
                }
            }
            part
        })
        .into_iter()
        .flatten()
        .collect();
    out.sort_unstable();
    out
}

/// Packed-form distance batch: `(out_index, d²)` for every valid row
/// across `blocks` against one query vector, in row order. The probe half
/// of an index-free range query over packed chunks.
pub fn packed_distances(
    query: &[f32],
    blocks: &[PackedBlock],
    pool: &WorkerPool,
) -> Vec<(u32, f32)> {
    pool.run_morsels(blocks.len(), pool.morsel_size(blocks.len()), |range| {
        let mut part = Vec::new();
        for bi in range {
            let b = &blocks[bi];
            for i in 0..b.rows() {
                if let Some(f) = b.row(i) {
                    part.push((b.base + i as u32, sq_euclidean(query, f)));
                }
            }
        }
        part
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Packed-form dedup probe: the self-join pair set of
/// [`packed_threshold_join`]`(blocks, blocks, tau)` — every ordered pair
/// `(i, j)` within `tau`, diagonal included — computed once per unordered
/// pair and mirrored (`sq_euclidean` is bitwise symmetric, so the mirrored
/// comparison cannot diverge). Feed the pairs to a union-find to cluster.
pub fn packed_dedup_pairs(blocks: &[PackedBlock], tau: f32, pool: &WorkerPool) -> Vec<(u32, u32)> {
    let tau_sq = tau * tau;
    let mut out: Vec<(u32, u32)> = pool
        .run_morsels(blocks.len(), pool.morsel_size(blocks.len()), |range| {
            let mut part = Vec::new();
            for bi in range {
                let lb = &blocks[bi];
                for i in 0..lb.rows() {
                    let Some(lf) = lb.row(i) else {
                        continue;
                    };
                    let gi = lb.base + i as u32;
                    // Diagonal: computed honestly — NaN features must fail
                    // the `<=` exactly as they do on the row path.
                    if sq_euclidean(lf, lf) <= tau_sq {
                        part.push((gi, gi));
                    }
                    // Strict upper triangle of this block, then every later
                    // block: each unordered pair evaluated once, emitted in
                    // both orientations.
                    for j in i + 1..lb.rows() {
                        if let Some(rf) = lb.row(j) {
                            if sq_euclidean(lf, rf) <= tau_sq {
                                let gj = lb.base + j as u32;
                                part.push((gi, gj));
                                part.push((gj, gi));
                            }
                        }
                    }
                    for rb in &blocks[bi + 1..] {
                        for j in 0..rb.rows() {
                            if let Some(rf) = rb.row(j) {
                                if sq_euclidean(lf, rf) <= tau_sq {
                                    let gj = rb.base + j as u32;
                                    part.push((gi, gj));
                                    part.push((gj, gi));
                                }
                            }
                        }
                    }
                }
            }
            part
        })
        .into_iter()
        .flatten()
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: the nested row-path join over materialized rows.
    fn nested_reference(
        left: &[Option<Vec<f32>>],
        right: &[Option<Vec<f32>>],
        tau: f32,
    ) -> Vec<(u32, u32)> {
        let tau_sq = tau * tau;
        let mut out = Vec::new();
        for (i, l) in left.iter().enumerate() {
            let Some(lf) = l else { continue };
            for (j, r) in right.iter().enumerate() {
                let Some(rf) = r else { continue };
                if sq_euclidean(lf, rf) <= tau_sq {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    /// Pack rows into blocks of `chunk` rows.
    fn blocks(rows: &[Option<Vec<f32>>], chunk: usize) -> Vec<(Vec<f32>, Vec<u32>, Vec<bool>)> {
        rows.chunks(chunk)
            .map(|slice| {
                let mut values = Vec::new();
                let mut offsets = vec![0u32];
                let mut valid = Vec::new();
                for r in slice {
                    if let Some(f) = r {
                        values.extend_from_slice(f);
                        valid.push(true);
                    } else {
                        valid.push(false);
                    }
                    offsets.push(values.len() as u32);
                }
                (values, offsets, valid)
            })
            .collect()
    }

    fn as_blocks(owned: &[(Vec<f32>, Vec<u32>, Vec<bool>)], chunk: usize) -> Vec<PackedBlock<'_>> {
        owned
            .iter()
            .enumerate()
            .map(|(i, (v, o, val))| PackedBlock::new(v, o, Some(val), (i * chunk) as u32))
            .collect()
    }

    fn rows(seed: u64, n: usize, dim: usize) -> Vec<Option<Vec<f32>>> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                if s >> 33 & 7 == 0 {
                    None
                } else {
                    Some(
                        (0..dim)
                            .map(|_| {
                                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                                ((s >> 33) % 100) as f32 / 10.0
                            })
                            .collect(),
                    )
                }
            })
            .collect()
    }

    #[test]
    fn threshold_join_matches_nested_reference() {
        let l = rows(1, 37, 5);
        let r = rows(2, 29, 5);
        let mut want = nested_reference(&l, &r, 3.0);
        want.sort_unstable();
        for chunk in [1usize, 7, 64] {
            let lo = blocks(&l, chunk);
            let ro = blocks(&r, chunk);
            for threads in [1usize, 2, 4] {
                let got = packed_threshold_join(
                    &as_blocks(&lo, chunk),
                    &as_blocks(&ro, chunk),
                    3.0,
                    &WorkerPool::new(threads),
                );
                assert_eq!(got, want, "chunk {chunk}, threads {threads}");
            }
        }
    }

    #[test]
    fn dedup_pairs_match_self_join() {
        let p = rows(3, 41, 4);
        let pool = WorkerPool::new(2);
        for chunk in [1usize, 8, 64] {
            let o = blocks(&p, chunk);
            let b = as_blocks(&o, chunk);
            let self_join = packed_threshold_join(&b, &b, 2.5, &pool);
            let dedup = packed_dedup_pairs(&b, 2.5, &pool);
            assert_eq!(dedup, self_join, "chunk {chunk}");
        }
    }

    #[test]
    fn distances_cover_valid_rows_in_order() {
        let p = rows(4, 23, 3);
        let o = blocks(&p, 6);
        let got = packed_distances(&[1.0, 2.0, 3.0], &as_blocks(&o, 6), &WorkerPool::new(3));
        let want: Vec<(u32, f32)> = p
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                r.as_ref()
                    .map(|f| (i as u32, sq_euclidean(&[1.0, 2.0, 3.0], f)))
            })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn nan_features_never_pair_even_with_themselves() {
        let p = vec![Some(vec![f32::NAN, 1.0]), Some(vec![0.0, 1.0])];
        let o = blocks(&p, 2);
        let b = as_blocks(&o, 2);
        let pool = WorkerPool::new(1);
        // Every distance involving the NaN row is NaN, so every `<=`
        // involving row 0 fails — including its own diagonal.
        assert_eq!(packed_dedup_pairs(&b, 10.0, &pool), vec![(1, 1)]);
    }

    #[test]
    fn empty_inputs_yield_no_pairs() {
        let pool = WorkerPool::new(2);
        assert!(packed_threshold_join(&[], &[], 1.0, &pool).is_empty());
        assert!(packed_dedup_pairs(&[], 1.0, &pool).is_empty());
        assert!(packed_distances(&[1.0], &[], &pool).is_empty());
    }
}
