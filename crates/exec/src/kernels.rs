//! Compute kernels in scalar, vectorized, and data-parallel form.
//!
//! Three implementations of each kernel back the three devices of the
//! paper's Fig. 8:
//!
//! * `*_scalar` — straightforward per-element loops (the "CPU" baseline).
//! * `*_vectorized` — restructured for SIMD: squared-norm + dot-product
//!   decomposition, fixed-width lane accumulators the compiler turns into
//!   vector instructions (the "AVX" variant).
//! * `*_parallel` — the vectorized kernel sharded over [`crossbeam`] scoped
//!   threads (the compute half of the simulated GPU).

use crate::matrix::Matrix;

// --------------------------------------------------------------------------
// Threshold join (image matching): pairs within Euclidean distance tau
// --------------------------------------------------------------------------

/// Naive scalar all-pairs threshold join.
pub fn threshold_join_scalar(a: &Matrix, b: &Matrix, tau: f32) -> Vec<(u32, u32)> {
    assert_eq!(a.cols(), b.cols(), "feature dimensions must match");
    let tau_sq = tau * tau;
    let mut out = Vec::new();
    for i in 0..a.rows() {
        let ra = a.row(i);
        for j in 0..b.rows() {
            let rb = b.row(j);
            let mut acc = 0f32;
            for k in 0..ra.len() {
                let d = ra[k] - rb[k];
                acc += d * d;
            }
            if acc <= tau_sq {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

/// Squared L2 norms of every row.
fn row_norms(m: &Matrix) -> Vec<f32> {
    (0..m.rows())
        .map(|i| m.row(i).iter().map(|v| v * v).sum())
        .collect()
}

/// 8-lane dot product the compiler autovectorizes.
#[inline]
fn dot8(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0f32; 8];
    let chunks = a.len() / 8;
    for c in 0..chunks {
        for l in 0..8 {
            acc[l] += a[c * 8 + l] * b[c * 8 + l];
        }
    }
    let mut sum: f32 = acc.iter().sum();
    for k in chunks * 8..a.len() {
        sum += a[k] * b[k];
    }
    sum
}

/// Vectorized threshold join using `||a-b||² = ||a||² + ||b||² − 2·a·b`.
pub fn threshold_join_vectorized(a: &Matrix, b: &Matrix, tau: f32) -> Vec<(u32, u32)> {
    assert_eq!(a.cols(), b.cols(), "feature dimensions must match");
    let tau_sq = tau * tau;
    let na = row_norms(a);
    let nb = row_norms(b);
    let mut out = Vec::new();
    for i in 0..a.rows() {
        let ra = a.row(i);
        let nai = na[i];
        for j in 0..b.rows() {
            let d2 = nai + nb[j] - 2.0 * dot8(ra, b.row(j));
            if d2 <= tau_sq {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

/// Parallel threshold join: rows of `a` sharded across `workers` threads,
/// each running the vectorized inner kernel.
pub fn threshold_join_parallel(
    a: &Matrix,
    b: &Matrix,
    tau: f32,
    workers: usize,
) -> Vec<(u32, u32)> {
    assert_eq!(a.cols(), b.cols(), "feature dimensions must match");
    let workers = workers.max(1);
    if a.rows() == 0 || b.rows() == 0 {
        return vec![];
    }
    let tau_sq = tau * tau;
    let nb = row_norms(b);
    let chunk = a.rows().div_ceil(workers);
    let mut results: Vec<Vec<(u32, u32)>> = Vec::new();
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(a.rows());
            if lo >= hi {
                continue;
            }
            let nb = &nb;
            handles.push(s.spawn(move |_| {
                let mut local = Vec::new();
                for i in lo..hi {
                    let ra = a.row(i);
                    let nai: f32 = ra.iter().map(|v| v * v).sum();
                    for j in 0..b.rows() {
                        let d2 = nai + nb[j] - 2.0 * dot8(ra, b.row(j));
                        if d2 <= tau_sq {
                            local.push((i as u32, j as u32));
                        }
                    }
                }
                local
            }));
        }
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
    })
    .expect("thread scope failed");
    let mut out: Vec<(u32, u32)> = results.into_iter().flatten().collect();
    out.sort_unstable();
    out
}

// --------------------------------------------------------------------------
// Convolution stack (neural-network-inference stand-in)
// --------------------------------------------------------------------------

/// 3×3 kernel weights used by the inference stand-in (an edge-ish filter
/// that keeps values bounded under repeated application with ReLU).
pub const CONV_KERNEL: [f32; 9] = [
    0.05, 0.10, 0.05, //
    0.10, 0.40, 0.10, //
    0.05, 0.10, 0.05,
];

#[inline]
fn conv3x3_at(src: &[f32], w: usize, h: usize, x: usize, y: usize) -> f32 {
    let mut acc = 0f32;
    for ky in 0..3usize {
        let sy = (y + ky).saturating_sub(1).min(h - 1);
        for kx in 0..3usize {
            let sx = (x + kx).saturating_sub(1).min(w - 1);
            acc += CONV_KERNEL[ky * 3 + kx] * src[sy * w + sx];
        }
    }
    acc
}

/// Scalar convolution stack: `layers` rounds of 3×3 conv + ReLU.
pub fn conv_stack_scalar(plane: &[f32], w: usize, h: usize, layers: usize) -> Vec<f32> {
    assert_eq!(plane.len(), w * h, "plane does not match shape");
    let mut cur = plane.to_vec();
    let mut next = vec![0f32; w * h];
    for _ in 0..layers {
        for y in 0..h {
            for x in 0..w {
                next[y * w + x] = conv3x3_at(&cur, w, h, x, y).max(0.0);
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Vectorized convolution stack: interior rows processed as three shifted
/// row-slices so the inner loop is a pure element-wise FMA chain.
pub fn conv_stack_vectorized(plane: &[f32], w: usize, h: usize, layers: usize) -> Vec<f32> {
    assert_eq!(plane.len(), w * h, "plane does not match shape");
    let mut cur = plane.to_vec();
    let mut next = vec![0f32; w * h];
    for _ in 0..layers {
        conv_layer_rows(&cur, &mut next, w, h, 0, h);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// One conv+ReLU layer over rows `[y0, y1)` — shared by the vectorized and
/// parallel kernels.
fn conv_layer_rows(cur: &[f32], next: &mut [f32], w: usize, h: usize, y0: usize, y1: usize) {
    for y in y0..y1 {
        if y == 0 || y == h - 1 || w < 3 {
            // Border rows fall back to the clamped scalar path.
            for x in 0..w {
                next[y * w + x] = conv3x3_at(cur, w, h, x, y).max(0.0);
            }
            continue;
        }
        let above = &cur[(y - 1) * w..y * w];
        let mid = &cur[y * w..(y + 1) * w];
        let below = &cur[(y + 1) * w..(y + 2) * w];
        let out = &mut next[y * w..(y + 1) * w];
        out[0] = conv3x3_at(cur, w, h, 0, y).max(0.0);
        for x in 1..w - 1 {
            let acc = CONV_KERNEL[0] * above[x - 1]
                + CONV_KERNEL[1] * above[x]
                + CONV_KERNEL[2] * above[x + 1]
                + CONV_KERNEL[3] * mid[x - 1]
                + CONV_KERNEL[4] * mid[x]
                + CONV_KERNEL[5] * mid[x + 1]
                + CONV_KERNEL[6] * below[x - 1]
                + CONV_KERNEL[7] * below[x]
                + CONV_KERNEL[8] * below[x + 1];
            out[x] = acc.max(0.0);
        }
        out[w - 1] = conv3x3_at(cur, w, h, w - 1, y).max(0.0);
    }
}

/// Parallel convolution stack: rows sharded across `workers` threads per
/// layer (layers synchronize, as real GPU kernels do).
pub fn conv_stack_parallel(
    plane: &[f32],
    w: usize,
    h: usize,
    layers: usize,
    workers: usize,
) -> Vec<f32> {
    assert_eq!(plane.len(), w * h, "plane does not match shape");
    let workers = workers.max(1);
    if workers == 1 {
        // Thread spawn costs dwarf the work for a single band; run the
        // vectorized kernel inline.
        return conv_stack_vectorized(plane, w, h, layers);
    }
    let mut cur = plane.to_vec();
    let mut next = vec![0f32; w * h];
    let rows_per = h.div_ceil(workers);
    for _ in 0..layers {
        crossbeam::thread::scope(|s| {
            // Split `next` into disjoint row bands, one per worker.
            let mut rest: &mut [f32] = &mut next;
            let mut y = 0usize;
            let cur_ref = &cur;
            let mut handles = Vec::new();
            while y < h {
                let band_rows = rows_per.min(h - y);
                let (band, tail) = rest.split_at_mut(band_rows * w);
                rest = tail;
                let y0 = y;
                handles.push(s.spawn(move |_| {
                    // Compute into a local buffer then copy: band indices are
                    // offset by y0 rows.
                    let mut local = vec![0f32; band.len()];
                    conv_band(cur_ref, &mut local, w, h, y0, y0 + band_rows);
                    band.copy_from_slice(&local);
                }));
                y += band_rows;
            }
            for h in handles {
                h.join().expect("worker panicked");
            }
        })
        .expect("thread scope failed");
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Like [`conv_layer_rows`] but writes into a band-local buffer.
fn conv_band(cur: &[f32], band: &mut [f32], w: usize, h: usize, y0: usize, y1: usize) {
    for y in y0..y1 {
        let dst = &mut band[(y - y0) * w..(y - y0 + 1) * w];
        if y == 0 || y == h - 1 || w < 3 {
            for x in 0..w {
                dst[x] = conv3x3_at(cur, w, h, x, y).max(0.0);
            }
            continue;
        }
        let above = &cur[(y - 1) * w..y * w];
        let mid = &cur[y * w..(y + 1) * w];
        let below = &cur[(y + 1) * w..(y + 2) * w];
        dst[0] = conv3x3_at(cur, w, h, 0, y).max(0.0);
        for x in 1..w - 1 {
            let acc = CONV_KERNEL[0] * above[x - 1]
                + CONV_KERNEL[1] * above[x]
                + CONV_KERNEL[2] * above[x + 1]
                + CONV_KERNEL[3] * mid[x - 1]
                + CONV_KERNEL[4] * mid[x]
                + CONV_KERNEL[5] * mid[x + 1]
                + CONV_KERNEL[6] * below[x - 1]
                + CONV_KERNEL[7] * below[x]
                + CONV_KERNEL[8] * below[x + 1];
            dst[x] = acc.max(0.0);
        }
        dst[w - 1] = conv3x3_at(cur, w, h, w - 1, y).max(0.0);
    }
}

// --------------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------------

/// Scalar histogram of `values` into `bins` equal cells over `[lo, hi)`.
pub fn histogram_scalar(values: &[f32], bins: usize, lo: f32, hi: f32) -> Vec<u32> {
    assert!(bins > 0 && hi > lo, "invalid histogram shape");
    let mut out = vec![0u32; bins];
    let scale = bins as f32 / (hi - lo);
    for &v in values {
        let b = (((v - lo) * scale) as isize).clamp(0, bins as isize - 1) as usize;
        out[b] += 1;
    }
    out
}

/// Parallel histogram: per-worker local histograms merged at the end.
pub fn histogram_parallel(
    values: &[f32],
    bins: usize,
    lo: f32,
    hi: f32,
    workers: usize,
) -> Vec<u32> {
    assert!(bins > 0 && hi > lo, "invalid histogram shape");
    let workers = workers.max(1);
    if values.is_empty() {
        return vec![0u32; bins];
    }
    let chunk = values.len().div_ceil(workers);
    let mut locals: Vec<Vec<u32>> = Vec::new();
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for piece in values.chunks(chunk) {
            handles.push(s.spawn(move |_| histogram_scalar(piece, bins, lo, hi)));
        }
        for h in handles {
            locals.push(h.join().expect("worker panicked"));
        }
    })
    .expect("thread scope failed");
    let mut out = vec![0u32; bins];
    for local in locals {
        for (o, l) in out.iter_mut().zip(local) {
            *o += l;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f32 / (1u64 << 31) as f32 * 10.0
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
    }

    #[test]
    fn join_variants_agree() {
        let a = mat(60, 16, 1);
        let b = mat(80, 16, 2);
        let tau = 9.0;
        let mut s = threshold_join_scalar(&a, &b, tau);
        let mut v = threshold_join_vectorized(&a, &b, tau);
        let p = threshold_join_parallel(&a, &b, tau, 4);
        s.sort_unstable();
        v.sort_unstable();
        // Norm-decomposition introduces float rounding; allow a tiny
        // disagreement only exactly at the threshold boundary.
        assert_eq!(s.len(), v.len(), "scalar vs vectorized");
        assert_eq!(s, v);
        assert_eq!(s, p);
    }

    #[test]
    fn join_self_contains_diagonal() {
        let a = mat(30, 8, 3);
        let pairs = threshold_join_vectorized(&a, &a, 1e-3);
        for i in 0..30u32 {
            assert!(pairs.contains(&(i, i)), "self-pair {i} missing");
        }
    }

    #[test]
    fn join_empty_inputs() {
        let a = mat(0, 8, 1);
        let b = mat(5, 8, 2);
        assert!(threshold_join_scalar(&a, &b, 1.0).is_empty());
        assert!(threshold_join_parallel(&a, &b, 1.0, 4).is_empty());
    }

    #[test]
    fn conv_variants_agree() {
        let (w, h) = (37, 23);
        let plane: Vec<f32> = (0..w * h).map(|i| ((i * 31) % 97) as f32).collect();
        let s = conv_stack_scalar(&plane, w, h, 3);
        let v = conv_stack_vectorized(&plane, w, h, 3);
        let p = conv_stack_parallel(&plane, w, h, 3, 4);
        for i in 0..s.len() {
            assert!((s[i] - v[i]).abs() < 1e-3, "scalar vs vectorized at {i}");
            assert!((s[i] - p[i]).abs() < 1e-3, "scalar vs parallel at {i}");
        }
    }

    #[test]
    fn conv_relu_clamps_negative() {
        let plane = vec![-5.0f32; 64];
        let out = conv_stack_scalar(&plane, 8, 8, 1);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn conv_preserves_flat_field_scale() {
        // Kernel sums to 1.0, so a flat positive field is (nearly) preserved.
        let plane = vec![100.0f32; 16 * 16];
        let out = conv_stack_scalar(&plane, 16, 16, 5);
        for &v in &out {
            assert!((v - 100.0).abs() < 1.0);
        }
    }

    #[test]
    fn histogram_variants_agree() {
        let values: Vec<f32> = (0..10_000).map(|i| (i % 256) as f32).collect();
        let s = histogram_scalar(&values, 16, 0.0, 256.0);
        let p = histogram_parallel(&values, 16, 0.0, 256.0, 8);
        assert_eq!(s, p);
        assert_eq!(s.iter().sum::<u32>(), 10_000);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let values = vec![-100.0f32, 500.0];
        let hist = histogram_scalar(&values, 4, 0.0, 256.0);
        assert_eq!(hist[0], 1);
        assert_eq!(hist[3], 1);
    }
}
