//! Compute kernels in scalar, vectorized, and data-parallel form.
//!
//! Three implementations of each kernel back the four execution devices
//! (the paper's Fig. 8 trio plus the multi-core CPU backend):
//!
//! * `*_scalar` — straightforward per-element loops (the "CPU" baseline).
//! * `*_vectorized` — restructured for SIMD: squared-norm + dot-product
//!   decomposition, fixed-width lane accumulators the compiler turns into
//!   vector instructions (the "AVX" variant).
//! * `*_parallel` — the vectorized kernel sharded over a morsel-driven
//!   [`WorkerPool`] of scoped threads (the multi-core CPU backend, and the
//!   compute half of the simulated GPU).

use crate::matrix::Matrix;
use crate::pool::WorkerPool;

// --------------------------------------------------------------------------
// Threshold join (image matching): pairs within Euclidean distance tau
// --------------------------------------------------------------------------

/// Naive scalar all-pairs threshold join.
pub fn threshold_join_scalar(a: &Matrix, b: &Matrix, tau: f32) -> Vec<(u32, u32)> {
    assert_eq!(a.cols(), b.cols(), "feature dimensions must match");
    let tau_sq = tau * tau;
    let mut out = Vec::new();
    for i in 0..a.rows() {
        let ra = a.row(i);
        for j in 0..b.rows() {
            let rb = b.row(j);
            let mut acc = 0f32;
            for k in 0..ra.len() {
                let d = ra[k] - rb[k];
                acc += d * d;
            }
            if acc <= tau_sq {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

/// Squared L2 norms of every row.
fn row_norms(m: &Matrix) -> Vec<f32> {
    (0..m.rows())
        .map(|i| m.row(i).iter().map(|v| v * v).sum())
        .collect()
}

/// 8-lane dot product the compiler autovectorizes. `chunks_exact` hands
/// LLVM fixed-length slices, so the inner loop compiles to bounds-check-free
/// SIMD lanes.
#[inline]
fn dot8(a: &[f32], b: &[f32]) -> f32 {
    let ca = a.chunks_exact(8);
    let cb = b.chunks_exact(8);
    let tail: f32 = ca
        .remainder()
        .iter()
        .zip(cb.remainder())
        .map(|(x, y)| x * y)
        .sum();
    let mut acc = [0f32; 8];
    for (ka, kb) in ca.zip(cb) {
        for l in 0..8 {
            acc[l] += ka[l] * kb[l];
        }
    }
    acc.iter().sum::<f32>() + tail
}

/// Vectorized threshold join using `||a-b||² = ||a||² + ||b||² − 2·a·b`.
pub fn threshold_join_vectorized(a: &Matrix, b: &Matrix, tau: f32) -> Vec<(u32, u32)> {
    assert_eq!(a.cols(), b.cols(), "feature dimensions must match");
    let tau_sq = tau * tau;
    let na = row_norms(a);
    let nb = row_norms(b);
    let mut out = Vec::new();
    for (i, &nai) in na.iter().enumerate() {
        let ra = a.row(i);
        for (j, &nbj) in nb.iter().enumerate() {
            let d2 = nai + nbj - 2.0 * dot8(ra, b.row(j));
            if d2 <= tau_sq {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

/// Parallel threshold join: morsels of `a`'s rows claimed dynamically by
/// `workers` scoped threads, each running the vectorized inner kernel.
///
/// Output is identical to [`threshold_join_vectorized`], including pair
/// order: morsels are contiguous row ranges reassembled in order.
pub fn threshold_join_parallel(
    a: &Matrix,
    b: &Matrix,
    tau: f32,
    workers: usize,
) -> Vec<(u32, u32)> {
    assert_eq!(a.cols(), b.cols(), "feature dimensions must match");
    if a.rows() == 0 || b.rows() == 0 {
        return vec![];
    }
    let tau_sq = tau * tau;
    let na = row_norms(a);
    let nb = row_norms(b);
    let pool = WorkerPool::new(workers);
    let morsels = pool.run_morsels(a.rows(), pool.morsel_size(a.rows()), |rows| {
        let mut local = Vec::new();
        for i in rows {
            let ra = a.row(i);
            let nai = na[i];
            for (j, &nbj) in nb.iter().enumerate() {
                let d2 = nai + nbj - 2.0 * dot8(ra, b.row(j));
                if d2 <= tau_sq {
                    local.push((i as u32, j as u32));
                }
            }
        }
        local
    });
    morsels.into_iter().flatten().collect()
}

// --------------------------------------------------------------------------
// Multi-query threshold join (batched queries sharing one distance pass)
// --------------------------------------------------------------------------

/// Batched scalar threshold join: one all-pairs distance pass serves every
/// threshold in `taus` (the shared-scan form of multi-query optimization).
/// Returns one pair vector per entry of `taus`, each bit-identical to what
/// [`threshold_join_scalar`] at that threshold alone would compute — the
/// distance expression is the same, only the comparison fans out.
pub fn threshold_join_multi_scalar(a: &Matrix, b: &Matrix, taus: &[f32]) -> Vec<Vec<(u32, u32)>> {
    assert_eq!(a.cols(), b.cols(), "feature dimensions must match");
    let tau_sqs: Vec<f32> = taus.iter().map(|t| t * t).collect();
    let tau_max_sq = tau_sqs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut out: Vec<Vec<(u32, u32)>> = vec![Vec::new(); taus.len()];
    for i in 0..a.rows() {
        let ra = a.row(i);
        for j in 0..b.rows() {
            let rb = b.row(j);
            let mut acc = 0f32;
            for k in 0..ra.len() {
                let d = ra[k] - rb[k];
                acc += d * d;
            }
            if acc <= tau_max_sq {
                for (q, &tau_sq) in tau_sqs.iter().enumerate() {
                    if acc <= tau_sq {
                        out[q].push((i as u32, j as u32));
                    }
                }
            }
        }
    }
    out
}

/// Batched vectorized threshold join: the norm + dot-product distance is
/// evaluated once per pair and demultiplexed across `taus`. Each member's
/// output is bit-identical to [`threshold_join_vectorized`] at that
/// threshold (identical float expression, identical pair order).
pub fn threshold_join_multi_vectorized(
    a: &Matrix,
    b: &Matrix,
    taus: &[f32],
) -> Vec<Vec<(u32, u32)>> {
    assert_eq!(a.cols(), b.cols(), "feature dimensions must match");
    let tau_sqs: Vec<f32> = taus.iter().map(|t| t * t).collect();
    let tau_max_sq = tau_sqs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let na = row_norms(a);
    let nb = row_norms(b);
    let mut out: Vec<Vec<(u32, u32)>> = vec![Vec::new(); taus.len()];
    for (i, &nai) in na.iter().enumerate() {
        let ra = a.row(i);
        for (j, &nbj) in nb.iter().enumerate() {
            let d2 = nai + nbj - 2.0 * dot8(ra, b.row(j));
            if d2 <= tau_max_sq {
                for (q, &tau_sq) in tau_sqs.iter().enumerate() {
                    if d2 <= tau_sq {
                        out[q].push((i as u32, j as u32));
                    }
                }
            }
        }
    }
    out
}

/// Batched parallel threshold join: morsels of `a`'s rows claimed by
/// `workers` scoped threads, each demultiplexing the shared distance pass
/// across every threshold. Per-member output is identical to
/// [`threshold_join_multi_vectorized`] (morsels reassemble in row order).
pub fn threshold_join_multi_parallel(
    a: &Matrix,
    b: &Matrix,
    taus: &[f32],
    workers: usize,
) -> Vec<Vec<(u32, u32)>> {
    assert_eq!(a.cols(), b.cols(), "feature dimensions must match");
    if a.rows() == 0 || b.rows() == 0 || taus.is_empty() {
        return vec![Vec::new(); taus.len()];
    }
    let tau_sqs: Vec<f32> = taus.iter().map(|t| t * t).collect();
    let tau_max_sq = tau_sqs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let na = row_norms(a);
    let nb = row_norms(b);
    let pool = WorkerPool::new(workers);
    let morsels = pool.run_morsels(a.rows(), pool.morsel_size(a.rows()), |rows| {
        let mut local: Vec<Vec<(u32, u32)>> = vec![Vec::new(); taus.len()];
        for i in rows {
            let ra = a.row(i);
            let nai = na[i];
            for (j, &nbj) in nb.iter().enumerate() {
                let d2 = nai + nbj - 2.0 * dot8(ra, b.row(j));
                if d2 <= tau_max_sq {
                    for (q, &tau_sq) in tau_sqs.iter().enumerate() {
                        if d2 <= tau_sq {
                            local[q].push((i as u32, j as u32));
                        }
                    }
                }
            }
        }
        local
    });
    let mut out: Vec<Vec<(u32, u32)>> = vec![Vec::new(); taus.len()];
    for morsel in morsels {
        for (q, pairs) in morsel.into_iter().enumerate() {
            out[q].extend(pairs);
        }
    }
    out
}

// --------------------------------------------------------------------------
// Convolution stack (neural-network-inference stand-in)
// --------------------------------------------------------------------------

/// 3×3 kernel weights used by the inference stand-in (an edge-ish filter
/// that keeps values bounded under repeated application with ReLU).
pub const CONV_KERNEL: [f32; 9] = [
    0.05, 0.10, 0.05, //
    0.10, 0.40, 0.10, //
    0.05, 0.10, 0.05,
];

#[inline]
fn conv3x3_at(src: &[f32], w: usize, h: usize, x: usize, y: usize) -> f32 {
    let mut acc = 0f32;
    for ky in 0..3usize {
        let sy = (y + ky).saturating_sub(1).min(h - 1);
        for kx in 0..3usize {
            let sx = (x + kx).saturating_sub(1).min(w - 1);
            acc += CONV_KERNEL[ky * 3 + kx] * src[sy * w + sx];
        }
    }
    acc
}

/// Scalar convolution stack: `layers` rounds of 3×3 conv + ReLU.
pub fn conv_stack_scalar(plane: &[f32], w: usize, h: usize, layers: usize) -> Vec<f32> {
    assert_eq!(plane.len(), w * h, "plane does not match shape");
    let mut cur = plane.to_vec();
    let mut next = vec![0f32; w * h];
    for _ in 0..layers {
        for y in 0..h {
            for x in 0..w {
                next[y * w + x] = conv3x3_at(&cur, w, h, x, y).max(0.0);
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Vectorized convolution stack: interior rows processed as three shifted
/// row-slices so the inner loop is a pure element-wise FMA chain.
pub fn conv_stack_vectorized(plane: &[f32], w: usize, h: usize, layers: usize) -> Vec<f32> {
    assert_eq!(plane.len(), w * h, "plane does not match shape");
    let mut cur = plane.to_vec();
    let mut next = vec![0f32; w * h];
    for _ in 0..layers {
        conv_layer_rows(&cur, &mut next, w, h, 0, h);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// One conv+ReLU layer over rows `[y0, y1)` — shared by the vectorized and
/// parallel kernels.
fn conv_layer_rows(cur: &[f32], next: &mut [f32], w: usize, h: usize, y0: usize, y1: usize) {
    for y in y0..y1 {
        if y == 0 || y == h - 1 || w < 3 {
            // Border rows fall back to the clamped scalar path.
            for x in 0..w {
                next[y * w + x] = conv3x3_at(cur, w, h, x, y).max(0.0);
            }
            continue;
        }
        let above = &cur[(y - 1) * w..y * w];
        let mid = &cur[y * w..(y + 1) * w];
        let below = &cur[(y + 1) * w..(y + 2) * w];
        let out = &mut next[y * w..(y + 1) * w];
        out[0] = conv3x3_at(cur, w, h, 0, y).max(0.0);
        for x in 1..w - 1 {
            let acc = CONV_KERNEL[0] * above[x - 1]
                + CONV_KERNEL[1] * above[x]
                + CONV_KERNEL[2] * above[x + 1]
                + CONV_KERNEL[3] * mid[x - 1]
                + CONV_KERNEL[4] * mid[x]
                + CONV_KERNEL[5] * mid[x + 1]
                + CONV_KERNEL[6] * below[x - 1]
                + CONV_KERNEL[7] * below[x]
                + CONV_KERNEL[8] * below[x + 1];
            out[x] = acc.max(0.0);
        }
        out[w - 1] = conv3x3_at(cur, w, h, w - 1, y).max(0.0);
    }
}

/// Parallel convolution stack: one scoped worker per contiguous row band
/// per layer (layers synchronize, as real GPU kernels do).
///
/// Stencil rows are uniform-cost, so static banding beats morsel claiming
/// here: workers write their band of a reused double buffer in place
/// (`split_at_mut`), with no per-layer allocation and no serial
/// reassembly on the caller thread.
pub fn conv_stack_parallel(
    plane: &[f32],
    w: usize,
    h: usize,
    layers: usize,
    workers: usize,
) -> Vec<f32> {
    assert_eq!(plane.len(), w * h, "plane does not match shape");
    let threads = WorkerPool::new(workers).threads().min(h.max(1));
    if threads <= 1 {
        // Thread spawn costs dwarf the work for a single band; run the
        // vectorized kernel inline.
        return conv_stack_vectorized(plane, w, h, layers);
    }
    let mut cur = plane.to_vec();
    let mut next = vec![0f32; w * h];
    let rows_per = h.div_ceil(threads);
    for _ in 0..layers {
        std::thread::scope(|s| {
            let cur_ref = &cur;
            let mut rest: &mut [f32] = &mut next;
            let mut y0 = 0usize;
            while y0 < h {
                let band_rows = rows_per.min(h - y0);
                let (band, tail) = rest.split_at_mut(band_rows * w);
                rest = tail;
                s.spawn(move || conv_band(cur_ref, band, w, h, y0, y0 + band_rows));
                y0 += band_rows;
            }
        });
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Like [`conv_layer_rows`] but writes into a band-local buffer.
fn conv_band(cur: &[f32], band: &mut [f32], w: usize, h: usize, y0: usize, y1: usize) {
    for y in y0..y1 {
        let dst = &mut band[(y - y0) * w..(y - y0 + 1) * w];
        if y == 0 || y == h - 1 || w < 3 {
            for (x, d) in dst.iter_mut().enumerate() {
                *d = conv3x3_at(cur, w, h, x, y).max(0.0);
            }
            continue;
        }
        let above = &cur[(y - 1) * w..y * w];
        let mid = &cur[y * w..(y + 1) * w];
        let below = &cur[(y + 1) * w..(y + 2) * w];
        dst[0] = conv3x3_at(cur, w, h, 0, y).max(0.0);
        for x in 1..w - 1 {
            let acc = CONV_KERNEL[0] * above[x - 1]
                + CONV_KERNEL[1] * above[x]
                + CONV_KERNEL[2] * above[x + 1]
                + CONV_KERNEL[3] * mid[x - 1]
                + CONV_KERNEL[4] * mid[x]
                + CONV_KERNEL[5] * mid[x + 1]
                + CONV_KERNEL[6] * below[x - 1]
                + CONV_KERNEL[7] * below[x]
                + CONV_KERNEL[8] * below[x + 1];
            dst[x] = acc.max(0.0);
        }
        dst[w - 1] = conv3x3_at(cur, w, h, w - 1, y).max(0.0);
    }
}

// --------------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------------

/// Scalar histogram of `values` into `bins` equal cells over `[lo, hi)`.
pub fn histogram_scalar(values: &[f32], bins: usize, lo: f32, hi: f32) -> Vec<u32> {
    assert!(bins > 0 && hi > lo, "invalid histogram shape");
    let mut out = vec![0u32; bins];
    let scale = bins as f32 / (hi - lo);
    for &v in values {
        let b = (((v - lo) * scale) as isize).clamp(0, bins as isize - 1) as usize;
        out[b] += 1;
    }
    out
}

/// Parallel histogram: per-worker local histograms merged at the end.
pub fn histogram_parallel(
    values: &[f32],
    bins: usize,
    lo: f32,
    hi: f32,
    workers: usize,
) -> Vec<u32> {
    assert!(bins > 0 && hi > lo, "invalid histogram shape");
    let workers = workers.max(1);
    if values.is_empty() {
        return vec![0u32; bins];
    }
    let pool = WorkerPool::new(workers);
    let locals = pool.run_morsels(values.len(), pool.morsel_size(values.len()), |r| {
        histogram_scalar(&values[r], bins, lo, hi)
    });
    let mut out = vec![0u32; bins];
    for local in locals {
        for (o, l) in out.iter_mut().zip(local) {
            *o += l;
        }
    }
    out
}

// --------------------------------------------------------------------------
// Distance batch (kNN probes, feature scoring)
// --------------------------------------------------------------------------

/// Scalar batch distance kernel: Euclidean distance from `query` to every
/// row of `m`.
pub fn distances_scalar(m: &Matrix, query: &[f32]) -> Vec<f32> {
    assert_eq!(m.cols(), query.len(), "feature dimensions must match");
    (0..m.rows())
        .map(|i| {
            let r = m.row(i);
            let mut acc = 0f32;
            for k in 0..r.len() {
                let d = r[k] - query[k];
                acc += d * d;
            }
            acc.sqrt()
        })
        .collect()
}

/// Shared vectorized row distance: norm + dot decomposition, clamped so
/// float rounding can't produce a negative squared distance.
#[inline]
fn row_distance(r: &[f32], nq: f32, query: &[f32]) -> f32 {
    let nr: f32 = r.iter().map(|v| v * v).sum();
    (nr + nq - 2.0 * dot8(r, query)).max(0.0).sqrt()
}

/// Vectorized batch distance kernel using the norm + dot decomposition.
pub fn distances_vectorized(m: &Matrix, query: &[f32]) -> Vec<f32> {
    assert_eq!(m.cols(), query.len(), "feature dimensions must match");
    let nq: f32 = query.iter().map(|v| v * v).sum();
    (0..m.rows())
        .map(|i| row_distance(m.row(i), nq, query))
        .collect()
}

/// Parallel batch distance kernel: row morsels claimed by `workers` threads,
/// each running the vectorized inner kernel. Output order matches
/// [`distances_vectorized`].
pub fn distances_parallel(m: &Matrix, query: &[f32], workers: usize) -> Vec<f32> {
    assert_eq!(m.cols(), query.len(), "feature dimensions must match");
    let nq: f32 = query.iter().map(|v| v * v).sum();
    let pool = WorkerPool::new(workers);
    let morsels = pool.run_morsels(m.rows(), pool.morsel_size(m.rows()), |rows| {
        rows.map(|i| row_distance(m.row(i), nq, query))
            .collect::<Vec<f32>>()
    });
    morsels.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f32 / (1u64 << 31) as f32 * 10.0
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
    }

    #[test]
    fn join_variants_agree() {
        let a = mat(60, 16, 1);
        let b = mat(80, 16, 2);
        let tau = 9.0;
        let mut s = threshold_join_scalar(&a, &b, tau);
        let mut v = threshold_join_vectorized(&a, &b, tau);
        let p = threshold_join_parallel(&a, &b, tau, 4);
        s.sort_unstable();
        v.sort_unstable();
        // Norm-decomposition introduces float rounding; allow a tiny
        // disagreement only exactly at the threshold boundary.
        assert_eq!(s.len(), v.len(), "scalar vs vectorized");
        assert_eq!(s, v);
        assert_eq!(s, p);
    }

    #[test]
    fn join_self_contains_diagonal() {
        let a = mat(30, 8, 3);
        let pairs = threshold_join_vectorized(&a, &a, 1e-3);
        for i in 0..30u32 {
            assert!(pairs.contains(&(i, i)), "self-pair {i} missing");
        }
    }

    #[test]
    fn join_empty_inputs() {
        let a = mat(0, 8, 1);
        let b = mat(5, 8, 2);
        assert!(threshold_join_scalar(&a, &b, 1.0).is_empty());
        assert!(threshold_join_parallel(&a, &b, 1.0, 4).is_empty());
    }

    #[test]
    fn conv_variants_agree() {
        let (w, h) = (37, 23);
        let plane: Vec<f32> = (0..w * h).map(|i| ((i * 31) % 97) as f32).collect();
        let s = conv_stack_scalar(&plane, w, h, 3);
        let v = conv_stack_vectorized(&plane, w, h, 3);
        let p = conv_stack_parallel(&plane, w, h, 3, 4);
        for i in 0..s.len() {
            assert!((s[i] - v[i]).abs() < 1e-3, "scalar vs vectorized at {i}");
            assert!((s[i] - p[i]).abs() < 1e-3, "scalar vs parallel at {i}");
        }
    }

    #[test]
    fn conv_relu_clamps_negative() {
        let plane = vec![-5.0f32; 64];
        let out = conv_stack_scalar(&plane, 8, 8, 1);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn conv_preserves_flat_field_scale() {
        // Kernel sums to 1.0, so a flat positive field is (nearly) preserved.
        let plane = vec![100.0f32; 16 * 16];
        let out = conv_stack_scalar(&plane, 16, 16, 5);
        for &v in &out {
            assert!((v - 100.0).abs() < 1.0);
        }
    }

    #[test]
    fn histogram_variants_agree() {
        let values: Vec<f32> = (0..10_000).map(|i| (i % 256) as f32).collect();
        let s = histogram_scalar(&values, 16, 0.0, 256.0);
        let p = histogram_parallel(&values, 16, 0.0, 256.0, 8);
        assert_eq!(s, p);
        assert_eq!(s.iter().sum::<u32>(), 10_000);
    }

    #[test]
    fn join_parallel_order_matches_vectorized_across_threads() {
        let a = mat(45, 12, 7);
        let b = mat(33, 12, 8);
        let v = threshold_join_vectorized(&a, &b, 6.0);
        for workers in [1, 2, 3, 8, 16] {
            let p = threshold_join_parallel(&a, &b, 6.0, workers);
            assert_eq!(v, p, "workers = {workers}: order must match vectorized");
        }
    }

    #[test]
    fn distance_variants_agree() {
        let m = mat(70, 24, 11);
        let q: Vec<f32> = mat(1, 24, 12).row(0).to_vec();
        let s = distances_scalar(&m, &q);
        let v = distances_vectorized(&m, &q);
        for workers in [1, 4] {
            let p = distances_parallel(&m, &q, workers);
            assert_eq!(p.len(), s.len());
            for i in 0..s.len() {
                assert!((s[i] - v[i]).abs() < 1e-3, "scalar vs vectorized at {i}");
                assert!(
                    (s[i] - p[i]).abs() < 1e-3,
                    "scalar vs parallel({workers}) at {i}"
                );
            }
        }
    }

    #[test]
    fn distance_to_self_is_zero() {
        let m = mat(5, 8, 13);
        let q = m.row(2).to_vec();
        let d = distances_vectorized(&m, &q);
        assert!(d[2].abs() < 1e-3, "self distance {}", d[2]);
        assert!(distances_parallel(&Matrix::zeros(0, 8), &[0.0; 8], 4).is_empty());
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let values = vec![-100.0f32, 500.0];
        let hist = histogram_scalar(&values, 4, 0.0, 256.0);
        assert_eq!(hist[0], 1);
        assert_eq!(hist[3], 1);
    }
}
