//! # deeplens-exec
//!
//! Execution backends for DeepLens compute kernels.
//!
//! The paper's Fig. 8 varies the "execution architecture" of both the ETL
//! phase (neural-network inference) and the query phase (image matching)
//! across a vanilla CPU implementation, a vectorized implementation (AVX),
//! and a GPU. Its key observation: GPUs dominate the inference-heavy ETL
//! phase, but for query-time kernels the *offload overhead* (kernel launch +
//! PCIe transfer) can exceed the speedup on small inputs.
//!
//! We have no GPU in this environment, so [`device::Device::GpuSim`] is a
//! simulated accelerator: a data-parallel thread-pool execution (high
//! throughput) plus an explicit launch-latency and transfer-cost model
//! (the overhead). The crossover behaviour — the only thing the experiments
//! depend on — is preserved by construction.
//!
//! Alongside the paper's three devices, [`device::Device::ParallelCpu`] is a
//! real multi-core CPU backend: the vectorized kernels sharded over a
//! morsel-driven scoped-thread [`pool::WorkerPool`], with no offload
//! overhead. It fills the gap the paper's §7.4.2 device-placement story
//! leaves between one vectorized core and full GPU offload.
//!
//! * [`device`] — device descriptors and the offload cost model.
//! * [`matrix`] — dense row-major `f32` matrices (feature sets).
//! * [`pool`] — the morsel-driven scoped worker pool.
//! * [`kernels`] — distance batches, threshold joins, histograms and the
//!   convolution stack used to emulate NN inference, each in scalar,
//!   vectorized, and parallel form.
//! * [`packed`] — the same join/dedup/distance kernels over *packed*
//!   feature blocks (flat values + row offsets), consumed chunk-at-a-time
//!   from the columnar scan layer without materializing rows.
//! * [`executor`] — ties a device to its kernel implementations.

#![deny(missing_docs)]

pub mod device;
pub mod executor;
pub mod kernels;
pub mod matrix;
pub mod packed;
pub mod pool;

pub use device::{configured_threads, Device, GpuProfile};
pub use executor::Executor;
pub use matrix::Matrix;
pub use pool::WorkerPool;
