//! Device descriptors and the offload cost model.

use std::time::Duration;

/// Hardware threads this process should assume, honoring the
/// `DEEPLENS_THREADS` environment variable.
///
/// Containers and CI runners frequently advertise a core count that has
/// nothing to do with the quota the process actually gets, and the test
/// suite needs to run under pinned thread shapes (the CI matrix exercises a
/// 1-thread and a many-thread configuration). `DEEPLENS_THREADS=<n>` (n ≥ 1)
/// overrides auto-detection everywhere a zero/auto thread count resolves:
/// [`Device::resolved_threads`], `WorkerPool::new(0)`, and the simulated
/// GPU's default worker count. Unset, empty, or unparsable values fall back
/// to [`std::thread::available_parallelism`].
pub fn configured_threads() -> usize {
    match std::env::var("DEEPLENS_THREADS") {
        Ok(raw) => parse_thread_override(&raw).unwrap_or_else(available_threads),
        Err(_) => available_threads(),
    }
}

/// Parse a `DEEPLENS_THREADS` value: a positive integer, or `None` to fall
/// back to auto-detection.
pub fn parse_thread_override(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// An execution backend for DeepLens kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// Vanilla scalar CPU implementation (the paper's "CPU").
    Cpu,
    /// Vectorized single-core implementation (the paper's "AVX").
    Avx,
    /// Multi-core CPU: the vectorized kernels sharded over a morsel-driven
    /// scoped-thread pool. The payload is the worker count; `0` means one
    /// worker per available hardware thread.
    ParallelCpu(usize),
    /// Simulated GPU: data-parallel workers plus launch/transfer overhead
    /// (the paper's "GPU").
    GpuSim,
}

impl Device {
    /// The paper's three devices, in the order its Fig. 8 reports them.
    pub fn all() -> [Device; 3] {
        [Device::Cpu, Device::Avx, Device::GpuSim]
    }

    /// Every backend including the multi-core CPU (auto thread count),
    /// scalar-to-parallel order.
    pub fn all_with_parallel() -> [Device; 4] {
        [
            Device::Cpu,
            Device::Avx,
            Device::ParallelCpu(0),
            Device::GpuSim,
        ]
    }

    /// Label used by the benchmark harnesses.
    pub fn label(&self) -> &'static str {
        match self {
            Device::Cpu => "CPU",
            Device::Avx => "AVX",
            Device::ParallelCpu(_) => "PAR",
            Device::GpuSim => "GPU",
        }
    }

    /// The worker count a [`Device::ParallelCpu`] resolves to on this host
    /// (`0` → hardware threads, see [`configured_threads`]); `1` for the
    /// single-core backends and the simulated GPU's host side.
    pub fn resolved_threads(&self) -> usize {
        match self {
            Device::ParallelCpu(0) => configured_threads(),
            Device::ParallelCpu(t) => *t,
            _ => 1,
        }
    }

    /// Parse a device from its command-line spelling, case-insensitively:
    /// `cpu`, `avx`, `gpu`, `parallel` (auto thread count), or
    /// `parallel:<n>` for an explicit worker count. `None` for anything
    /// else — callers print their own usage message.
    pub fn parse(spec: &str) -> Option<Device> {
        let spec = spec.trim().to_ascii_lowercase();
        match spec.as_str() {
            "cpu" => Some(Device::Cpu),
            "avx" => Some(Device::Avx),
            "gpu" | "gpusim" => Some(Device::GpuSim),
            "parallel" | "par" => Some(Device::ParallelCpu(0)),
            _ => {
                let n = spec
                    .strip_prefix("parallel:")
                    .or(spec.strip_prefix("par:"))?;
                n.parse::<usize>().ok().map(Device::ParallelCpu)
            }
        }
    }
}

/// Overhead model of the simulated GPU.
///
/// Every kernel launch pays [`GpuProfile::launch_overhead`] once, plus
/// transfer time for all input/output bytes at
/// [`GpuProfile::bandwidth_gib_s`]. Compute itself runs on
/// [`GpuProfile::workers`] threads. These three parameters reproduce the
/// crossover in the paper's Fig. 8: small workloads lose to the overhead,
/// large workloads amortize it.
#[derive(Debug, Clone, Copy)]
pub struct GpuProfile {
    /// Fixed cost per kernel launch.
    pub launch_overhead: Duration,
    /// Host↔device transfer bandwidth in GiB/s.
    pub bandwidth_gib_s: f64,
    /// Data-parallel worker threads ("SM occupancy").
    pub workers: usize,
}

impl Default for GpuProfile {
    fn default() -> Self {
        GpuProfile {
            launch_overhead: Duration::from_micros(250),
            bandwidth_gib_s: 8.0,
            workers: configured_threads(),
        }
    }
}

impl GpuProfile {
    /// Time to move `bytes` across the simulated PCIe link.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        let secs = bytes as f64 / (self.bandwidth_gib_s * 1024.0 * 1024.0 * 1024.0);
        Duration::from_secs_f64(secs)
    }

    /// Total offload overhead for a kernel moving `bytes` in + out.
    pub fn offload_overhead(&self, bytes: usize) -> Duration {
        self.launch_overhead + self.transfer_time(bytes)
    }

    /// Busy-wait for the overhead duration. Sleeping is too coarse for
    /// sub-millisecond overheads on most schedulers, so we spin — the point
    /// is that wall-clock measurements include the cost.
    pub fn pay_overhead(&self, bytes: usize) {
        let d = self.offload_overhead(bytes);
        let start = std::time::Instant::now();
        while start.elapsed() < d {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_order() {
        assert_eq!(Device::all().map(|d| d.label()), ["CPU", "AVX", "GPU"]);
        assert_eq!(
            Device::all_with_parallel().map(|d| d.label()),
            ["CPU", "AVX", "PAR", "GPU"]
        );
    }

    #[test]
    fn parse_covers_the_cli_spellings() {
        assert_eq!(Device::parse("cpu"), Some(Device::Cpu));
        assert_eq!(Device::parse(" AVX "), Some(Device::Avx));
        assert_eq!(Device::parse("gpu"), Some(Device::GpuSim));
        assert_eq!(Device::parse("parallel"), Some(Device::ParallelCpu(0)));
        assert_eq!(Device::parse("parallel:6"), Some(Device::ParallelCpu(6)));
        assert_eq!(Device::parse("par:2"), Some(Device::ParallelCpu(2)));
        assert_eq!(Device::parse("tpu"), None);
        assert_eq!(Device::parse("parallel:x"), None);
    }

    #[test]
    fn parallel_cpu_resolves_threads() {
        assert_eq!(Device::ParallelCpu(6).resolved_threads(), 6);
        assert!(Device::ParallelCpu(0).resolved_threads() >= 1);
        assert_eq!(Device::Cpu.resolved_threads(), 1);
        assert_eq!(Device::GpuSim.resolved_threads(), 1);
    }

    #[test]
    fn thread_override_parsing() {
        // The pure parser behind DEEPLENS_THREADS (the env read itself is
        // not exercised here: the test harness runs tests concurrently and
        // process-global env mutation would race).
        assert_eq!(parse_thread_override("4"), Some(4));
        assert_eq!(parse_thread_override(" 16 "), Some(16));
        assert_eq!(parse_thread_override("1"), Some(1));
        assert_eq!(parse_thread_override("0"), None, "zero means auto");
        assert_eq!(parse_thread_override(""), None);
        assert_eq!(parse_thread_override("lots"), None);
        assert_eq!(parse_thread_override("-2"), None);
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let p = GpuProfile {
            bandwidth_gib_s: 1.0,
            ..Default::default()
        };
        let t1 = p.transfer_time(1024 * 1024 * 1024);
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-9);
        let t2 = p.transfer_time(2 * 1024 * 1024 * 1024);
        assert!((t2.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_includes_launch() {
        let p = GpuProfile {
            launch_overhead: Duration::from_micros(100),
            bandwidth_gib_s: 8.0,
            workers: 2,
        };
        assert!(p.offload_overhead(0) >= Duration::from_micros(100));
    }

    #[test]
    fn pay_overhead_takes_wallclock_time() {
        let p = GpuProfile {
            launch_overhead: Duration::from_micros(500),
            bandwidth_gib_s: 8.0,
            workers: 2,
        };
        let start = std::time::Instant::now();
        p.pay_overhead(0);
        assert!(start.elapsed() >= Duration::from_micros(500));
    }
}
