//! Morsel-driven scoped worker pool.
//!
//! The parallel-CPU backend shards a kernel's iteration space into
//! fixed-size **morsels** (contiguous index ranges, after Leis et al.'s
//! morsel-driven parallelism). Workers are scoped threads that repeatedly
//! claim the next unclaimed morsel from a shared atomic cursor, so load
//! balances dynamically: a worker that drew cheap morsels simply claims
//! more of them. Results are reassembled in morsel order, which makes every
//! pool-backed kernel deterministic — output order never depends on thread
//! scheduling.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use deeplens_analyze::sync::{LockRank, OrderedMutex};

/// A scoped worker pool executing morsel-sharded kernels.
///
/// The pool is a *policy* object (thread count), not a set of live threads:
/// each [`WorkerPool::run_morsels`] call spawns scoped workers for exactly
/// the duration of the kernel, so borrowed inputs need no `'static` bound
/// and no shutdown protocol exists to get wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Pool with `threads` workers; `0` means one worker per available
    /// hardware thread (honoring the `DEEPLENS_THREADS` override — see
    /// [`crate::device::configured_threads`]).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            crate::device::configured_threads()
        } else {
            threads
        };
        WorkerPool { threads }
    }

    /// Number of workers this pool runs.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Morsel size that gives each worker several morsels to claim (dynamic
    /// load balancing) without collapsing into per-item scheduling overhead.
    pub fn morsel_size(&self, items: usize) -> usize {
        items.div_ceil(self.threads * 4).max(1)
    }

    /// Run `f` over `0..items` sharded into `morsel`-sized ranges and return
    /// the per-morsel results **in morsel order**.
    ///
    /// `f` sees each contiguous range exactly once. With one worker (or one
    /// morsel) everything runs inline on the caller's thread — no spawn cost
    /// on the small-input path the optimizer routes away from parallelism
    /// anyway.
    pub fn run_morsels<T, F>(&self, items: usize, morsel: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        assert!(morsel > 0, "morsel size must be positive");
        if items == 0 {
            return Vec::new();
        }
        let n_morsels = items.div_ceil(morsel);
        let morsel_range = |m: usize| m * morsel..((m + 1) * morsel).min(items);
        if self.threads == 1 || n_morsels == 1 {
            return (0..n_morsels).map(|m| f(morsel_range(m))).collect();
        }

        let cursor = AtomicUsize::new(0);
        // `WorkerResults` is the innermost rank: each worker takes it once,
        // at the end of its morsel run, holding nothing else (workers are
        // fresh scoped threads with empty held stacks).
        let collected: OrderedMutex<Vec<(usize, T)>> = OrderedMutex::new(
            LockRank::WorkerResults,
            "WorkerPool::collected",
            Vec::with_capacity(n_morsels),
        );
        std::thread::scope(|s| {
            for _ in 0..self.threads.min(n_morsels) {
                s.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let m = cursor.fetch_add(1, Ordering::Relaxed);
                        if m >= n_morsels {
                            break;
                        }
                        local.push((m, f(morsel_range(m))));
                    }
                    collected.lock().extend(local);
                });
            }
        });
        let mut tagged = collected.into_inner();
        tagged.sort_unstable_by_key(|(m, _)| *m);
        debug_assert_eq!(tagged.len(), n_morsels);
        tagged.into_iter().map(|(_, v)| v).collect()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_exactly_once() {
        for threads in [1, 2, 3, 8] {
            for items in [0usize, 1, 7, 64, 1000] {
                let pool = WorkerPool::new(threads);
                let ranges = pool.run_morsels(items, 13, |r| r);
                let flat: Vec<usize> = ranges.into_iter().flatten().collect();
                assert_eq!(flat, (0..items).collect::<Vec<_>>(), "{threads}t/{items}i");
            }
        }
    }

    #[test]
    fn results_arrive_in_morsel_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run_morsels(100, 7, |r| r.start);
        let expect: Vec<usize> = (0..100).step_by(7).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn zero_threads_resolves_to_hardware() {
        assert!(WorkerPool::new(0).threads() >= 1);
        assert_eq!(WorkerPool::new(3).threads(), 3);
    }

    #[test]
    fn morsel_size_scales_with_items() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.morsel_size(0), 1);
        assert!(pool.morsel_size(16) >= 1);
        // Large inputs give every worker several morsels.
        let m = pool.morsel_size(100_000);
        assert!(100_000usize.div_ceil(m) >= 4 * 4);
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let data: Vec<u64> = (0..10_000).collect();
        let pool = WorkerPool::new(8);
        let partials = pool.run_morsels(data.len(), pool.morsel_size(data.len()), |r| {
            data[r].iter().sum::<u64>()
        });
        assert_eq!(partials.iter().sum::<u64>(), data.iter().sum::<u64>());
    }
}
