//! The serving loop: TCP accept → connection threads → session dispatch.
//!
//! [`serve`] binds a listener over an [`Arc<SharedCatalog>`] and returns a
//! [`ServerHandle`]. Each accepted connection gets its **own**
//! [`Session`] attached to the shared catalog — the connection *is* the
//! session, so the multi-session thread-budget split
//! ([`Session::effective_threads`]) and snapshot isolation apply to remote
//! clients exactly as they do to in-process ones.
//!
//! Every executing request passes **cost-weighted admission**
//! ([`crate::admission`]): its wall-clock is estimated with the
//! [`DevicePlanner`] (joins via [`DevicePlanner::place_join`], dedups as
//! self-joins, probes via [`DevicePlanner::probe_estimate_us`], writes by
//! data volume), weighted against the global in-flight budget, queued to a
//! bounded depth, and shed with [`Response::Overloaded`] past it.
//! Admitted requests execute through [`Session::batch`] and reply with
//! results byte-identical to direct in-process execution.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use deeplens_analyze::sync::{LockRank, OrderedMutex};

use deeplens_core::batch::BatchQuery;
use deeplens_core::optimizer::{CostModel, DevicePlanner};
use deeplens_core::patch::{ImgRef, Patch};
use deeplens_core::session::Session;
use deeplens_core::shared::SharedCatalog;
use deeplens_exec::Device;

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::protocol::{
    write_frame, Request, Response, ServeStats, WireError, DEFAULT_MAX_FRAME_BYTES,
};

/// Poll interval of the accept loop and the per-connection read timeout:
/// the granularity at which threads notice a shutdown request.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Execution device of every connection's session.
    pub device: Device,
    /// Per-frame payload cap; larger announced frames are rejected without
    /// allocating and the connection is closed.
    pub max_frame_bytes: usize,
    /// Admission knobs (in-flight cost budget, queue depth).
    pub admission: AdmissionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            device: Device::Avx,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            admission: AdmissionConfig::default(),
        }
    }
}

/// Handle to a running server: address, counters, shutdown.
#[derive(Debug)]
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<OrderedMutex<Vec<JoinHandle<()>>>>,
    admission: Arc<AdmissionController>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests admitted (executed) so far.
    pub fn admitted(&self) -> u64 {
        self.admission.admitted()
    }

    /// Requests shed with [`Response::Overloaded`] so far.
    pub fn shed(&self) -> u64 {
        self.admission.shed()
    }

    /// Stop accepting, wake every connection thread, and join them all.
    /// Idempotent; also runs on drop.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let drained: Vec<JoinHandle<()>> = std::mem::take(&mut *self.connections.lock());
        for t in drained {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Start serving `catalog` per `config`. Returns once the listener is
/// bound; the accept loop and every connection run on background threads
/// until [`ServerHandle::stop`].
pub fn serve(catalog: Arc<SharedCatalog>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let admission = Arc::new(AdmissionController::new(config.admission));
    let connections: Arc<OrderedMutex<Vec<JoinHandle<()>>>> = Arc::new(OrderedMutex::new(
        LockRank::ConnectionRegistry,
        "ServerHandle::connections",
        Vec::new(),
    ));
    // One calibration per server, not per request: the planner constants
    // are host properties.
    let planner = DevicePlanner::calibrated();

    let accept_thread = {
        let shutdown = shutdown.clone();
        let connections = connections.clone();
        let admission = admission.clone();
        std::thread::spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let conn = Connection {
                            catalog: catalog.clone(),
                            admission: admission.clone(),
                            shutdown: shutdown.clone(),
                            planner,
                            model: CostModel::default(),
                            device: config.device,
                            max_frame_bytes: config.max_frame_bytes,
                        };
                        let handle = std::thread::spawn(move || conn.run(stream));
                        connections.lock().push(handle);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
            }
        })
    };

    Ok(ServerHandle {
        local_addr,
        shutdown,
        accept_thread: Some(accept_thread),
        connections,
        admission,
    })
}

/// Per-connection state and dispatch.
struct Connection {
    catalog: Arc<SharedCatalog>,
    admission: Arc<AdmissionController>,
    shutdown: Arc<AtomicBool>,
    planner: DevicePlanner,
    model: CostModel,
    device: Device,
    max_frame_bytes: usize,
}

impl Connection {
    fn run(self, mut stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        // The connection IS a session: remote clients enter the same
        // thread-budget split and snapshot isolation as in-process ones.
        let mut session = match Session::ephemeral_attached(self.catalog.clone()) {
            Ok(s) => s,
            Err(_) => return,
        };
        session.set_device(self.device);

        loop {
            let payload = match self.read_frame_interruptible(&mut stream) {
                Ok(Some(p)) => p,
                // Clean EOF or shutdown.
                Ok(None) => return,
                Err(WireError::FrameTooLarge { len, max }) => {
                    // Reject without allocating — and without consuming the
                    // oversized payload, so the stream cannot be resynced:
                    // reply, then close.
                    let _ = self.reply(
                        &mut stream,
                        &Response::Error(format!(
                            "frame of {len} bytes exceeds the {max}-byte limit"
                        )),
                    );
                    return;
                }
                // Disconnect mid-frame, or a transport error.
                Err(WireError::Io(_)) => return,
                Err(WireError::Malformed(msg)) => {
                    let _ = self.reply(&mut stream, &Response::Error(msg));
                    return;
                }
            };
            let request = match Request::decode(&payload) {
                Ok(r) => r,
                Err(e) => {
                    // The frame boundary is intact, so a malformed payload
                    // is answerable — report and keep serving.
                    if self
                        .reply(&mut stream, &Response::Error(e.to_string()))
                        .is_err()
                    {
                        return;
                    }
                    continue;
                }
            };
            let response = self.handle(&session, &request);
            if self.reply(&mut stream, &response).is_err() {
                return;
            }
        }
    }

    fn reply(&self, stream: &mut TcpStream, response: &Response) -> Result<(), WireError> {
        let payload = response.encode_or_error();
        write_frame(stream, &payload)?;
        Ok(())
    }

    /// Dispatch one request. Executing requests pass admission first; the
    /// permit spans execution so the in-flight budget reflects running
    /// work.
    fn handle(&self, session: &Session, request: &Request) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats(ServeStats {
                active_sessions: self.catalog.active_sessions() as u32,
                collections: self.catalog.names().len() as u32,
                admitted: self.admission.admitted(),
                shed: self.admission.shed(),
                columnar_hits: deeplens_core::catalog::columnar_backing_hits(),
                columnar_stale: deeplens_core::catalog::columnar_backing_stale(),
                columnar_rebuilt: deeplens_core::catalog::columnar_backings_rebuilt(),
                cache_hits: self.catalog.result_cache().hits(),
                cache_misses: self.catalog.result_cache().misses(),
                cache_evictions: self.catalog.result_cache().evictions(),
                delta_merges: deeplens_core::catalog::index_delta_merges(),
            }),
            executing => {
                let cost_us = self.request_cost_us(executing);
                let permit = match self.admission.admit(cost_us) {
                    Ok(p) => p,
                    Err(_) => return Response::Overloaded,
                };
                let response = self.execute(session, executing);
                drop(permit);
                response
            }
        }
    }

    fn execute(&self, session: &Session, request: &Request) -> Response {
        match request {
            Request::Batch(queries) => {
                let mut batch = session.batch();
                for q in queries {
                    batch.push(q.clone());
                }
                match batch.run() {
                    Ok(results) => Response::Results(results),
                    Err(e) => Response::Error(e.to_string()),
                }
            }
            Request::Materialize { name, rows } => {
                let mut ids = self.catalog.reserve_patch_ids(rows.len() as u64);
                let patches: Vec<Patch> = rows
                    .iter()
                    .enumerate()
                    .map(|(i, row)| {
                        Patch::features(ids.alloc(), ImgRef::frame("wire", i as u64), row.clone())
                    })
                    .collect();
                self.catalog.materialize(name, patches);
                Response::Ack
            }
            Request::BuildIndex { collection, index } => {
                match session.build_ball_index(collection, index) {
                    Ok(()) => Response::Ack,
                    Err(e) => Response::Error(e.to_string()),
                }
            }
            // `handle` answers these without admission; replying an error
            // here (rather than panicking the connection thread) keeps the
            // request paths panic-free even if routing ever regresses.
            Request::Ping | Request::Stats => {
                Response::Error("internal: non-executing request routed to execute".into())
            }
        }
    }

    /// Estimated cost (µs of single-core vectorized work) of one request —
    /// the weight admission charges against the in-flight budget. The
    /// planner divides the machine across the currently active sessions,
    /// so the same query costs more on a crowded server.
    fn request_cost_us(&self, request: &Request) -> f64 {
        let planner = self
            .planner
            .for_sessions(self.catalog.active_sessions().max(1));
        let cost = match request {
            Request::Ping | Request::Stats => 0.0,
            Request::Batch(queries) => queries
                .iter()
                .map(|q| self.query_cost_us(&planner, q))
                .sum(),
            Request::Materialize { rows, .. } => {
                // A write is a copy: charge the float volume at the
                // vectorized throughput bridge.
                let floats: usize = rows.iter().map(Vec::len).sum();
                floats as f64 / planner.units_per_us
            }
            Request::BuildIndex { collection, .. } => {
                let (n, dim) = self.collection_shape(collection);
                self.model.build_cost(n, dim) / planner.units_per_us
            }
        };
        cost.max(1.0)
    }

    fn query_cost_us(&self, planner: &DevicePlanner, query: &BatchQuery) -> f64 {
        // A member whose snapshot-keyed result is resident in the catalog's
        // result cache executes as a clone, not a join: re-price it to zero
        // (the request-level clamp keeps the admission floor at 1 µs). The
        // peek races with eviction and with concurrent writers, but a stale
        // answer here only misprices admission — execution consults the
        // cache again and always returns correct bytes.
        if self
            .cached_query_key(query)
            .is_some_and(|key| self.catalog.result_cache().peek(&key))
        {
            return 0.0;
        }
        match query {
            BatchQuery::SimilarityJoin { left, right, .. } => {
                let (nl, dim) = self.collection_shape(left);
                let (nr, _) = self.collection_shape(right);
                let (strategy, device) = planner.place_join(&self.model, nl, nr, dim);
                planner.join_estimate_us(&self.model, strategy, nl, nr, dim, device)
            }
            BatchQuery::Dedup { collection, .. } => {
                // A dedup is a self-join plus linear clustering; the join
                // dominates.
                let (n, dim) = self.collection_shape(collection);
                let (strategy, device) = planner.place_join(&self.model, n, n, dim);
                planner.join_estimate_us(&self.model, strategy, n, n, dim, device)
            }
            BatchQuery::IndexProbe { collection, .. } => {
                let (n, dim) = self.collection_shape(collection);
                planner.probe_estimate_us(&self.model, n, dim, Device::Avx)
            }
        }
    }

    /// The result-cache fingerprint `query` would be served under against
    /// the catalog's *current* snapshot versions, or `None` when the query
    /// is uncacheable (missing collection, unversioned snapshot, or a
    /// θ-predicate — the last cannot arrive over the wire).
    fn cached_query_key(&self, query: &BatchQuery) -> Option<Vec<u8>> {
        use deeplens_core::cache::fingerprint;
        match query {
            BatchQuery::SimilarityJoin {
                left,
                right,
                tau,
                predicate,
            } => {
                if predicate.is_some() {
                    return None;
                }
                fingerprint::join_key(
                    self.catalog.snapshot(left).ok()?.version(),
                    self.catalog.snapshot(right).ok()?.version(),
                    *tau,
                )
            }
            BatchQuery::Dedup { collection, tau } => {
                fingerprint::dedup_key(self.catalog.snapshot(collection).ok()?.version(), *tau)
            }
            BatchQuery::IndexProbe {
                collection,
                index,
                probe,
                tau,
            } => fingerprint::probe_key(
                self.catalog.snapshot(collection).ok()?.version(),
                index,
                probe,
                *tau,
            ),
        }
    }

    /// `(len, feature dim)` of a collection for costing; unknown names cost
    /// as empty (execution will answer `NotFound` after a cheap admission).
    fn collection_shape(&self, name: &str) -> (usize, usize) {
        match self.catalog.snapshot(name) {
            Ok(col) => {
                let dim = col
                    .patches
                    .first()
                    .and_then(|p| p.data.features())
                    .map_or(8, <[f32]>::len);
                (col.len(), dim)
            }
            Err(_) => (0, 8),
        }
    }

    /// [`crate::protocol::read_frame`] semantics, tolerant of read
    /// timeouts — the shutdown flag is re-checked between attempts — while
    /// still treating EOF inside a frame as the error it is.
    fn read_frame_interruptible(
        &self,
        stream: &mut TcpStream,
    ) -> Result<Option<Vec<u8>>, WireError> {
        let mut header = [0u8; 4];
        let mut got = 0usize;
        while got < 4 {
            if self.shutdown.load(Ordering::SeqCst) {
                return Ok(None);
            }
            match stream.read(&mut header[got..]) {
                Ok(0) if got == 0 => return Ok(None),
                Ok(0) => {
                    return Err(WireError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "disconnect inside a frame header",
                    )))
                }
                Ok(n) => got += n,
                Err(e) if retryable(&e) => continue,
                Err(e) => return Err(e.into()),
            }
        }
        let len = u32::from_le_bytes(header) as usize;
        if len > self.max_frame_bytes {
            return Err(WireError::FrameTooLarge {
                len,
                max: self.max_frame_bytes,
            });
        }
        let mut payload = vec![0u8; len];
        let mut got = 0usize;
        while got < len {
            if self.shutdown.load(Ordering::SeqCst) {
                return Ok(None);
            }
            match stream.read(&mut payload[got..]) {
                Ok(0) => {
                    return Err(WireError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "disconnect inside a frame payload",
                    )))
                }
                Ok(n) => got += n,
                Err(e) if retryable(&e) => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(Some(payload))
    }
}

/// Read errors that mean "try again" rather than "connection failed".
fn retryable(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::Interrupted
    )
}
