//! Cost-weighted admission control with bounded queuing and load shedding.
//!
//! Every request entering the server carries a **cost estimate** in
//! microseconds of single-core vectorized work (produced by the
//! [`DevicePlanner`]-based costing in [`crate::server`]). The controller
//! admits requests against a global in-flight budget:
//!
//! * while the sum of admitted costs stays within
//!   [`AdmissionConfig::max_inflight_cost_us`], requests are admitted
//!   immediately — cheap probes keep flowing next to an expensive join
//!   instead of queuing behind a per-connection count;
//! * past the budget, requests **queue in FIFO order** up to
//!   [`AdmissionConfig::max_queue_depth`] waiters;
//! * past the queue depth, requests are **shed**: [`AdmissionController::admit`]
//!   returns [`Overloaded`] immediately and the server replies
//!   `Response::Overloaded` instead of stalling the connection.
//!
//! A request costing more than the whole budget is still admitted once the
//! system drains (the `running == 0` escape hatch), so one oversized query
//! can never deadlock the server — it just runs alone.
//!
//! The synchronization is a ranked `OrderedMutex` + `OrderedCondvar` ticket
//! queue: each waiter takes a ticket and proceeds only when its ticket is at
//! the head and capacity is available, so admission order is arrival order —
//! a flood of cheap requests cannot starve an expensive one at the head. The
//! controller's lock carries [`LockRank::AdmissionQueue`], the outermost
//! rank in the workspace order: a request blocks here before touching any
//! engine state, and nothing may be held while entering the controller
//! (checked at runtime under `debug_assertions`).
//!
//! [`DevicePlanner`]: deeplens_core::optimizer::DevicePlanner
//! [`Overloaded`]: Overloaded

use std::sync::atomic::{AtomicU64, Ordering};

use deeplens_analyze::sync::{LockRank, OrderedCondvar, OrderedMutex};

/// Admission knobs.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Global budget of in-flight request cost, in estimated microseconds
    /// of single-core vectorized work.
    pub max_inflight_cost_us: f64,
    /// Maximum requests allowed to wait for budget; the next one is shed.
    pub max_queue_depth: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            // Half a second of estimated single-core work in flight, and a
            // short queue: past that, replying Overloaded beats stacking
            // latency on every connection.
            max_inflight_cost_us: 500_000.0,
            max_queue_depth: 32,
        }
    }
}

/// The shed verdict: the budget was exhausted *and* the queue was full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded {
    /// Waiters already queued when the request was shed.
    pub queued: usize,
}

/// Mutable admission state behind the lock.
#[derive(Debug, Default)]
struct State {
    /// Sum of admitted (still-running) request costs.
    inflight_cost_us: f64,
    /// Admitted requests currently executing.
    running: usize,
    /// Waiters currently queued.
    queued: usize,
    /// Next ticket to hand out.
    next_ticket: u64,
    /// Ticket currently allowed to attempt admission (FIFO head).
    head: u64,
}

/// Cost-weighted admission controller shared by every connection.
#[derive(Debug)]
pub struct AdmissionController {
    config_budget_us: f64,
    max_queue_depth: usize,
    state: OrderedMutex<State>,
    cv: OrderedCondvar,
    admitted: AtomicU64,
    shed: AtomicU64,
}

impl Default for AdmissionController {
    fn default() -> Self {
        Self::new(AdmissionConfig::default())
    }
}

impl AdmissionController {
    /// A controller enforcing `config`.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config_budget_us: config.max_inflight_cost_us.max(0.0),
            max_queue_depth: config.max_queue_depth,
            state: OrderedMutex::new(
                LockRank::AdmissionQueue,
                "AdmissionController::state",
                State::default(),
            ),
            cv: OrderedCondvar::new(),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Admit a request of estimated cost `cost_us`, blocking in FIFO order
    /// while the in-flight budget is exhausted. Returns the RAII permit
    /// whose drop releases the cost, or [`Overloaded`] immediately when the
    /// wait queue is already at the configured depth.
    pub fn admit(&self, cost_us: f64) -> Result<Permit<'_>, Overloaded> {
        let cost_us = cost_us.max(1.0);
        let mut st = self.state.lock();
        let fits =
            |st: &State| st.running == 0 || st.inflight_cost_us + cost_us <= self.config_budget_us;
        if !(st.queued == 0 && fits(&st)) {
            // Must wait — or shed, if the queue is already full.
            if st.queued >= self.max_queue_depth {
                let queued = st.queued;
                drop(st);
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(Overloaded { queued });
            }
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            st.queued += 1;
            while !(st.head == ticket && fits(&st)) {
                st = self.cv.wait(st);
            }
            st.head += 1;
            st.queued -= 1;
        } else {
            // Immediate admission consumes a ticket too, keeping the FIFO
            // head aligned with arrivals.
            st.next_ticket += 1;
            st.head += 1;
        }
        st.running += 1;
        st.inflight_cost_us += cost_us;
        drop(st);
        // Wake the next waiter: admission may leave budget for it.
        self.cv.notify_all();
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(Permit {
            controller: self,
            cost_us,
        })
    }

    /// Requests admitted since construction.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests shed since construction.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Waiters currently queued for budget.
    pub fn queued(&self) -> usize {
        self.state.lock().queued
    }

    /// Sum of admitted, still-running request costs (µs).
    pub fn inflight_cost_us(&self) -> f64 {
        self.state.lock().inflight_cost_us
    }

    fn release(&self, cost_us: f64) {
        let mut st = self.state.lock();
        st.running -= 1;
        st.inflight_cost_us = (st.inflight_cost_us - cost_us).max(0.0);
        drop(st);
        self.cv.notify_all();
    }
}

/// RAII admission permit: holds `cost_us` of the in-flight budget until
/// dropped.
#[derive(Debug)]
pub struct Permit<'a> {
    controller: &'a AdmissionController,
    cost_us: f64,
}

impl Permit<'_> {
    /// The admitted cost this permit holds.
    pub fn cost_us(&self) -> f64 {
        self.cost_us
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.controller.release(self.cost_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
        let start = std::time::Instant::now();
        while start.elapsed() < timeout {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        cond()
    }

    #[test]
    fn admits_within_budget_without_blocking() {
        let ctl = AdmissionController::new(AdmissionConfig {
            max_inflight_cost_us: 100.0,
            max_queue_depth: 4,
        });
        let a = ctl.admit(40.0).unwrap();
        let b = ctl.admit(40.0).unwrap();
        assert_eq!(ctl.admitted(), 2);
        assert_eq!(ctl.shed(), 0);
        assert!((ctl.inflight_cost_us() - 80.0).abs() < 1e-9);
        drop(a);
        drop(b);
        assert!(ctl.inflight_cost_us() < 1e-9);
    }

    #[test]
    fn oversized_request_runs_alone_instead_of_deadlocking() {
        let ctl = AdmissionController::new(AdmissionConfig {
            max_inflight_cost_us: 10.0,
            max_queue_depth: 4,
        });
        // Costs far beyond the whole budget still admit when idle.
        let p = ctl.admit(1e9).unwrap();
        drop(p);
        assert_eq!(ctl.admitted(), 1);
    }

    #[test]
    fn sheds_start_only_past_the_configured_queue_depth() {
        const DEPTH: usize = 3;
        let ctl = Arc::new(AdmissionController::new(AdmissionConfig {
            max_inflight_cost_us: 10.0,
            max_queue_depth: DEPTH,
        }));
        // Exhaust the budget with one running request…
        let hog = ctl.admit(10.0).unwrap();
        // …then fill the queue with exactly DEPTH blocked waiters.
        let waiters: Vec<_> = (0..DEPTH)
            .map(|_| {
                let ctl = ctl.clone();
                std::thread::spawn(move || drop(ctl.admit(5.0).unwrap()))
            })
            .collect();
        assert!(
            wait_until(Duration::from_secs(5), || ctl.queued() == DEPTH),
            "waiters did not enqueue"
        );
        // Depth reached but not exceeded: nothing shed yet.
        assert_eq!(ctl.shed(), 0, "sheds must not start below the depth");
        // The DEPTH+1-th concurrent request is the first to shed.
        let verdict = ctl.admit(5.0);
        assert_eq!(verdict.unwrap_err(), Overloaded { queued: DEPTH });
        assert_eq!(ctl.shed(), 1);
        // Draining the hog lets every queued waiter through, in order.
        drop(hog);
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(ctl.admitted() as usize, 1 + DEPTH);
        assert_eq!(ctl.queued(), 0);
        assert!(ctl.inflight_cost_us() < 1e-9);
    }

    #[test]
    fn queued_requests_admit_in_arrival_order() {
        let ctl = Arc::new(AdmissionController::new(AdmissionConfig {
            max_inflight_cost_us: 10.0,
            max_queue_depth: 16,
        }));
        let hog = ctl.admit(10.0).unwrap();
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..4 {
            let ctl_i = ctl.clone();
            let order = order.clone();
            handles.push(std::thread::spawn(move || {
                // Full-budget cost: each waiter admits only after its
                // predecessor released, so the recorded order is exactly
                // the admission order.
                let p = ctl_i.admit(10.0).unwrap();
                order.lock().unwrap().push(i);
                drop(p);
            }));
            // Serialize arrivals so ticket order is the spawn order.
            assert!(
                wait_until(Duration::from_secs(5), || ctl.queued() == i + 1),
                "waiter {i} did not enqueue"
            );
        }
        drop(hog);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3], "FIFO admission");
    }
}
