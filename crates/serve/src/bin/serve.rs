//! `serve` — stand up a DeepLens query server on a TCP address.
//!
//! ```text
//! serve [--addr HOST:PORT] [--device cpu|avx|parallel[:N]|gpu]
//!       [--budget-us N] [--queue-depth N] [--demo]
//! ```
//!
//! `--demo` seeds three deterministic feature collections (`small`,
//! `large`, `other`) plus a Ball-Tree index `by_feat` on `large`, so a
//! fresh server answers queries immediately. The process serves until
//! killed.

use std::sync::Arc;

use deeplens_core::patch::{ImgRef, Patch};
use deeplens_core::shared::SharedCatalog;
use deeplens_exec::Device;
use deeplens_serve::{serve, AdmissionConfig, ServerConfig};

/// Deterministic feature patches (the same LCG the core test corpora use).
fn feat_patches(catalog: &SharedCatalog, n: u64, dim: usize, seed: u64) -> Vec<Patch> {
    let mut ids = catalog.reserve_patch_ids(n);
    let mut s = seed;
    (0..n)
        .map(|i| {
            let f: Vec<f32> = (0..dim)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (s >> 33) as f32 / (1u64 << 31) as f32 * 10.0
                })
                .collect();
            Patch::features(ids.alloc(), ImgRef::frame("demo", i), f)
        })
        .collect()
}

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--device cpu|avx|parallel[:N]|gpu] \
         [--budget-us N] [--queue-depth N] [--demo]"
    );
    std::process::exit(2)
}

fn main() {
    let mut config = ServerConfig::default();
    let mut demo = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = args.next().unwrap_or_else(|| usage()),
            "--device" => {
                let spec = args.next().unwrap_or_else(|| usage());
                config.device = Device::parse(&spec).unwrap_or_else(|| usage());
            }
            "--budget-us" => {
                let v = args.next().and_then(|v| v.parse::<f64>().ok());
                config.admission.max_inflight_cost_us =
                    v.filter(|v| *v > 0.0).unwrap_or_else(|| usage());
            }
            "--queue-depth" => {
                let v = args.next().and_then(|v| v.parse::<usize>().ok());
                config.admission.max_queue_depth = v.unwrap_or_else(|| usage());
            }
            "--demo" => demo = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let catalog = Arc::new(SharedCatalog::new());
    if demo {
        catalog.materialize("small", feat_patches(&catalog, 60, 6, 1));
        catalog.materialize("large", feat_patches(&catalog, 220, 6, 2));
        catalog.materialize("other", feat_patches(&catalog, 90, 6, 3));
        catalog
            .build_ball_index("large", "by_feat", 1)
            .expect("demo index");
        println!("serve: demo collections small/large/other seeded, index large.by_feat built");
    }

    let admission: AdmissionConfig = config.admission;
    let server = match serve(catalog, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "serve: listening on {} (budget {:.0}µs in flight, queue depth {})",
        server.local_addr(),
        admission.max_inflight_cost_us,
        admission.max_queue_depth,
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
