//! The `deeplens-serve` wire protocol: length-prefixed frames carrying a
//! compact binary encoding of requests and responses.
//!
//! # Framing
//!
//! Every message is one **frame**: a 4-byte little-endian payload length
//! followed by that many payload bytes. A reader that sees a length above
//! its configured maximum rejects the frame without allocating — an
//! adversarial or corrupt peer cannot make the server reserve gigabytes.
//!
//! # Payloads
//!
//! The first payload byte is an opcode; the rest is the body. Scalars are
//! little-endian; strings are a `u16` byte length plus UTF-8 bytes; vectors
//! are a `u32` element count plus elements. Requests mirror
//! [`BatchQuery`] (θ-predicates are a host-language feature and do not
//! cross the wire); responses carry [`BatchResult`] losslessly, so a client
//! can compare served results byte-for-byte against direct [`Session`]
//! execution.
//!
//! [`Session`]: deeplens_core::session::Session

use std::io::{Read, Write};

use deeplens_core::batch::{BatchQuery, BatchResult};

/// Default cap on a single frame's payload size (1 MiB): large enough for
/// any realistic batch or result set, small enough that a hostile length
/// prefix cannot balloon server memory.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// A protocol-level failure.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (including a peer disconnecting
    /// mid-frame).
    Io(std::io::Error),
    /// A frame announced a payload larger than the configured maximum.
    FrameTooLarge {
        /// The announced payload length.
        len: usize,
        /// The reader's configured cap.
        max: usize,
    },
    /// The payload bytes do not decode as a valid message.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            WireError::Malformed(msg) => write!(f, "malformed message: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Serving counters reported by [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Sessions currently attached to the served catalog (one per live
    /// connection, plus any in-process sessions).
    pub active_sessions: u32,
    /// Materialized collections in the catalog.
    pub collections: u32,
    /// Requests admitted (executed) since the server started.
    pub admitted: u64,
    /// Requests shed with [`Response::Overloaded`] since the server started.
    pub shed: u64,
    /// Scans served by a live (row-count-current) columnar backing since
    /// process start (`deeplens_core::catalog::columnar_backing_hits`).
    pub columnar_hits: u64,
    /// Scans that found only a stale columnar backing and fell back to the
    /// row layout since process start.
    pub columnar_stale: u64,
    /// Columnar backings rebuilt by re-materializes (rather than silently
    /// dropped) since process start.
    pub columnar_rebuilt: u64,
    /// Result-cache lookups served from cache since the catalog was built
    /// (`SharedCatalog::result_cache`).
    pub cache_hits: u64,
    /// Result-cache lookups that fell through to execution.
    pub cache_misses: u64,
    /// Result-cache entries evicted by the LRU bound.
    pub cache_evictions: u64,
    /// Ball-index deltas collapsed into a full rebuild by the cost model's
    /// merge policy since process start
    /// (`deeplens_core::catalog::index_delta_merges`).
    pub delta_merges: u64,
}

/// A client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`] and never admitted
    /// against the cost budget.
    Ping,
    /// Execute a batch of declarative queries on the connection's session
    /// ([`deeplens_core::session::Session::batch`]). One admission unit.
    Batch(Vec<BatchQuery>),
    /// Materialize a collection of feature patches under `name`.
    Materialize {
        /// Collection name to publish.
        name: String,
        /// One feature vector per patch.
        rows: Vec<Vec<f32>>,
    },
    /// Build a Ball-Tree index named `index` on `collection`.
    BuildIndex {
        /// Collection to index.
        collection: String,
        /// Name the index is registered under.
        index: String,
    },
    /// Fetch serving counters; never admitted against the cost budget.
    Stats,
}

/// A server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Batch results, in query order, lossless.
    Results(Vec<BatchResult>),
    /// A write request ([`Request::Materialize`], [`Request::BuildIndex`])
    /// completed.
    Ack,
    /// Reply to [`Request::Stats`].
    Stats(ServeStats),
    /// The request was **shed**: the in-flight cost budget is exhausted and
    /// the wait queue is at its configured depth. The request was not
    /// executed; the client may retry later.
    Overloaded,
    /// The request was admitted (or rejected before admission) and failed;
    /// the message is the error's display form.
    Error(String),
}

// Request opcodes.
const OP_PING: u8 = 0x01;
const OP_BATCH: u8 = 0x02;
const OP_MATERIALIZE: u8 = 0x03;
const OP_BUILD_INDEX: u8 = 0x04;
const OP_STATS: u8 = 0x05;

// Batch-member tags.
const Q_JOIN: u8 = 0x01;
const Q_DEDUP: u8 = 0x02;
const Q_PROBE: u8 = 0x03;

// Response tags.
const R_PONG: u8 = 0x01;
const R_RESULTS: u8 = 0x02;
const R_ACK: u8 = 0x03;
const R_STATS: u8 = 0x04;
const R_OVERLOADED: u8 = 0xFE;
const R_ERROR: u8 = 0xFF;

// Batch-result tags.
const B_PAIRS: u8 = 0x01;
const B_CLUSTERS: u8 = 0x02;
const B_HITS: u8 = 0x03;

/// Write one frame: 4-byte little-endian payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame, rejecting payloads longer than `max_bytes` before
/// allocating. `Ok(None)` on a clean EOF at a frame boundary (the peer hung
/// up between requests); an EOF *inside* a frame is an error.
pub fn read_frame(r: &mut impl Read, max_bytes: usize) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_bytes {
        return Err(WireError::FrameTooLarge {
            len,
            max: max_bytes,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), WireError> {
    let len = u16::try_from(s.len())
        .map_err(|_| WireError::Malformed(format!("string of {} bytes too long", s.len())))?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_f32s(out: &mut Vec<u8>, v: &[f32]) {
    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

impl Request {
    /// Encode into a frame payload. Fails on a
    /// [`BatchQuery::SimilarityJoin`] carrying a θ-predicate — closures are
    /// host-language objects and do not cross the wire.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(OP_PING),
            Request::Batch(queries) => {
                out.push(OP_BATCH);
                let n = u16::try_from(queries.len()).map_err(|_| {
                    WireError::Malformed(format!("batch of {} queries too large", queries.len()))
                })?;
                out.extend_from_slice(&n.to_le_bytes());
                for q in queries {
                    match q {
                        BatchQuery::SimilarityJoin {
                            left,
                            right,
                            tau,
                            predicate,
                        } => {
                            if predicate.is_some() {
                                return Err(WireError::Malformed(
                                    "θ-predicates are not wire-encodable".into(),
                                ));
                            }
                            out.push(Q_JOIN);
                            put_str(&mut out, left)?;
                            put_str(&mut out, right)?;
                            out.extend_from_slice(&tau.to_le_bytes());
                        }
                        BatchQuery::Dedup { collection, tau } => {
                            out.push(Q_DEDUP);
                            put_str(&mut out, collection)?;
                            out.extend_from_slice(&tau.to_le_bytes());
                        }
                        BatchQuery::IndexProbe {
                            collection,
                            index,
                            probe,
                            tau,
                        } => {
                            out.push(Q_PROBE);
                            put_str(&mut out, collection)?;
                            put_str(&mut out, index)?;
                            out.extend_from_slice(&tau.to_le_bytes());
                            put_f32s(&mut out, probe);
                        }
                    }
                }
            }
            Request::Materialize { name, rows } => {
                out.push(OP_MATERIALIZE);
                put_str(&mut out, name)?;
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    put_f32s(&mut out, row);
                }
            }
            Request::BuildIndex { collection, index } => {
                out.push(OP_BUILD_INDEX);
                put_str(&mut out, collection)?;
                put_str(&mut out, index)?;
            }
            Request::Stats => out.push(OP_STATS),
        }
        Ok(out)
    }
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::new();
        match self {
            Response::Pong => out.push(R_PONG),
            Response::Results(results) => {
                out.push(R_RESULTS);
                let n = u16::try_from(results.len()).map_err(|_| {
                    WireError::Malformed(format!("{} results too many", results.len()))
                })?;
                out.extend_from_slice(&n.to_le_bytes());
                for r in results {
                    match r {
                        BatchResult::Pairs(pairs) => {
                            out.push(B_PAIRS);
                            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
                            for (l, r) in pairs {
                                out.extend_from_slice(&l.to_le_bytes());
                                out.extend_from_slice(&r.to_le_bytes());
                            }
                        }
                        BatchResult::Clusters(clusters) => {
                            out.push(B_CLUSTERS);
                            out.extend_from_slice(&(clusters.len() as u32).to_le_bytes());
                            for c in clusters {
                                out.extend_from_slice(&(c.len() as u32).to_le_bytes());
                                for m in c {
                                    out.extend_from_slice(&m.to_le_bytes());
                                }
                            }
                        }
                        BatchResult::Hits(hits) => {
                            out.push(B_HITS);
                            out.extend_from_slice(&(hits.len() as u32).to_le_bytes());
                            for h in hits {
                                out.extend_from_slice(&h.to_le_bytes());
                            }
                        }
                    }
                }
            }
            Response::Ack => out.push(R_ACK),
            Response::Stats(s) => {
                out.push(R_STATS);
                out.extend_from_slice(&s.active_sessions.to_le_bytes());
                out.extend_from_slice(&s.collections.to_le_bytes());
                out.extend_from_slice(&s.admitted.to_le_bytes());
                out.extend_from_slice(&s.shed.to_le_bytes());
                out.extend_from_slice(&s.columnar_hits.to_le_bytes());
                out.extend_from_slice(&s.columnar_stale.to_le_bytes());
                out.extend_from_slice(&s.columnar_rebuilt.to_le_bytes());
                out.extend_from_slice(&s.cache_hits.to_le_bytes());
                out.extend_from_slice(&s.cache_misses.to_le_bytes());
                out.extend_from_slice(&s.cache_evictions.to_le_bytes());
                out.extend_from_slice(&s.delta_merges.to_le_bytes());
            }
            Response::Overloaded => out.push(R_OVERLOADED),
            Response::Error(msg) => {
                out.push(R_ERROR);
                let truncated: String = msg.chars().take(4096).collect();
                put_str(&mut out, &truncated)?;
            }
        }
        Ok(out)
    }

    /// Encode into a frame payload, degrading to an `Error` reply instead of
    /// failing: the server always has *something* well-formed to put on the
    /// wire, so a response that cannot encode (e.g. an oversized result set)
    /// is reported to the client rather than panicking or silently dropping
    /// the connection.
    pub fn encode_or_error(&self) -> Vec<u8> {
        if let Ok(payload) = self.encode() {
            return payload;
        }
        // Hand-rolled fallback frame: tag + 2-byte length + static message.
        // Infallible by construction (the message is short and ASCII).
        const MSG: &[u8] = b"unencodable response";
        let mut out = Vec::with_capacity(3 + MSG.len());
        out.push(R_ERROR);
        out.extend_from_slice(&(MSG.len() as u16).to_le_bytes());
        out.extend_from_slice(MSG);
        out
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Byte cursor over one frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                WireError::Malformed(format!(
                    "truncated: needed {n} bytes at offset {}, frame has {}",
                    self.pos,
                    self.buf.len()
                ))
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Take exactly `N` bytes as an array — the infallible-by-construction
    /// form of `take(N).try_into()`, keeping the decode path panic-free.
    fn arr<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.arr()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.arr()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.arr()?))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.arr()?))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::Malformed(format!("invalid UTF-8 string: {e}")))
    }

    fn f32s(&mut self) -> Result<Vec<f32>, WireError> {
        let n = self.u32()? as usize;
        // The count must be consistent with the remaining frame before
        // allocating: a lying header cannot reserve more than the frame.
        if n.checked_mul(4)
            .is_none_or(|b| b > self.buf.len() - self.pos)
        {
            return Err(WireError::Malformed(format!(
                "vector of {n} floats exceeds the frame"
            )));
        }
        (0..n).map(|_| self.f32()).collect()
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

impl Request {
    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut c = Cursor::new(payload);
        let req = match c.u8()? {
            OP_PING => Request::Ping,
            OP_BATCH => {
                let n = c.u16()? as usize;
                let mut queries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    queries.push(match c.u8()? {
                        Q_JOIN => BatchQuery::SimilarityJoin {
                            left: c.string()?,
                            right: c.string()?,
                            tau: c.f32()?,
                            predicate: None,
                        },
                        Q_DEDUP => BatchQuery::Dedup {
                            collection: c.string()?,
                            tau: c.f32()?,
                        },
                        Q_PROBE => {
                            let collection = c.string()?;
                            let index = c.string()?;
                            let tau = c.f32()?;
                            let probe = c.f32s()?;
                            BatchQuery::IndexProbe {
                                collection,
                                index,
                                probe,
                                tau,
                            }
                        }
                        tag => {
                            return Err(WireError::Malformed(format!("unknown query tag {tag:#x}")))
                        }
                    });
                }
                Request::Batch(queries)
            }
            OP_MATERIALIZE => {
                let name = c.string()?;
                let n = c.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    rows.push(c.f32s()?);
                }
                Request::Materialize { name, rows }
            }
            OP_BUILD_INDEX => Request::BuildIndex {
                collection: c.string()?,
                index: c.string()?,
            },
            OP_STATS => Request::Stats,
            op => return Err(WireError::Malformed(format!("unknown request op {op:#x}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut c = Cursor::new(payload);
        let resp = match c.u8()? {
            R_PONG => Response::Pong,
            R_RESULTS => {
                let n = c.u16()? as usize;
                let mut results = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    results.push(match c.u8()? {
                        B_PAIRS => {
                            let n = c.u32()? as usize;
                            let mut pairs = Vec::with_capacity(n.min(1 << 16));
                            for _ in 0..n {
                                pairs.push((c.u32()?, c.u32()?));
                            }
                            BatchResult::Pairs(pairs)
                        }
                        B_CLUSTERS => {
                            let n = c.u32()? as usize;
                            let mut clusters = Vec::with_capacity(n.min(1 << 16));
                            for _ in 0..n {
                                let m = c.u32()? as usize;
                                let mut members = Vec::with_capacity(m.min(1 << 16));
                                for _ in 0..m {
                                    members.push(c.u32()?);
                                }
                                clusters.push(members);
                            }
                            BatchResult::Clusters(clusters)
                        }
                        B_HITS => {
                            let n = c.u32()? as usize;
                            let mut hits = Vec::with_capacity(n.min(1 << 16));
                            for _ in 0..n {
                                hits.push(c.u32()?);
                            }
                            BatchResult::Hits(hits)
                        }
                        tag => {
                            return Err(WireError::Malformed(format!(
                                "unknown result tag {tag:#x}"
                            )))
                        }
                    });
                }
                Response::Results(results)
            }
            R_ACK => Response::Ack,
            R_STATS => Response::Stats(ServeStats {
                active_sessions: c.u32()?,
                collections: c.u32()?,
                admitted: c.u64()?,
                shed: c.u64()?,
                columnar_hits: c.u64()?,
                columnar_stale: c.u64()?,
                columnar_rebuilt: c.u64()?,
                cache_hits: c.u64()?,
                cache_misses: c.u64()?,
                cache_evictions: c.u64()?,
                delta_merges: c.u64()?,
            }),
            R_OVERLOADED => Response::Overloaded,
            R_ERROR => Response::Error(c.string()?),
            tag => {
                return Err(WireError::Malformed(format!(
                    "unknown response tag {tag:#x}"
                )))
            }
        };
        c.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &Request) -> Request {
        Request::decode(&req.encode().unwrap()).unwrap()
    }

    #[test]
    fn requests_roundtrip() {
        let batch = Request::Batch(vec![
            BatchQuery::SimilarityJoin {
                left: "a".into(),
                right: "b".into(),
                tau: 1.5,
                predicate: None,
            },
            BatchQuery::Dedup {
                collection: "a".into(),
                tau: 0.25,
            },
            BatchQuery::IndexProbe {
                collection: "a".into(),
                index: "by_feat".into(),
                probe: vec![1.0, -2.5, 3.0],
                tau: 2.0,
            },
        ]);
        match roundtrip_request(&batch) {
            Request::Batch(qs) => {
                assert_eq!(qs.len(), 3);
                match &qs[2] {
                    BatchQuery::IndexProbe { probe, tau, .. } => {
                        assert_eq!(probe, &vec![1.0, -2.5, 3.0]);
                        assert_eq!(*tau, 2.0);
                    }
                    other => panic!("wrong member: {other:?}"),
                }
            }
            other => panic!("wrong request: {other:?}"),
        }
        assert!(matches!(roundtrip_request(&Request::Ping), Request::Ping));
        assert!(matches!(roundtrip_request(&Request::Stats), Request::Stats));
        let mat = Request::Materialize {
            name: "col".into(),
            rows: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
        };
        match roundtrip_request(&mat) {
            Request::Materialize { name, rows } => {
                assert_eq!(name, "col");
                assert_eq!(rows, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn responses_roundtrip_losslessly() {
        let resp = Response::Results(vec![
            BatchResult::Pairs(vec![(0, 1), (2, 3)]),
            BatchResult::Clusters(vec![vec![0, 1], vec![2]]),
            BatchResult::Hits(vec![7, 8, 9]),
        ]);
        assert_eq!(Response::decode(&resp.encode().unwrap()).unwrap(), resp);
        let stats = Response::Stats(ServeStats {
            active_sessions: 3,
            collections: 2,
            admitted: 100,
            shed: 7,
            columnar_hits: 41,
            columnar_stale: 5,
            columnar_rebuilt: 2,
            cache_hits: 19,
            cache_misses: 23,
            cache_evictions: 1,
            delta_merges: 4,
        });
        assert_eq!(Response::decode(&stats.encode().unwrap()).unwrap(), stats);
        for r in [
            Response::Pong,
            Response::Ack,
            Response::Overloaded,
            Response::Error("boom".into()),
        ] {
            assert_eq!(Response::decode(&r.encode().unwrap()).unwrap(), r);
        }
    }

    #[test]
    fn predicates_do_not_cross_the_wire() {
        let pred: deeplens_core::batch::JoinPredicate = std::sync::Arc::new(|_, _| true);
        let req = Request::Batch(vec![BatchQuery::SimilarityJoin {
            left: "a".into(),
            right: "b".into(),
            tau: 1.0,
            predicate: Some(pred),
        }]);
        assert!(matches!(req.encode(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn truncated_and_malformed_payloads_are_rejected() {
        let good = Request::Batch(vec![BatchQuery::Dedup {
            collection: "abc".into(),
            tau: 1.0,
        }])
        .encode()
        .unwrap();
        // Every strict prefix is a truncation error, never a panic.
        for cut in 0..good.len() {
            assert!(
                Request::decode(&good[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // Trailing garbage is rejected too.
        let mut padded = good.clone();
        padded.push(0xAB);
        assert!(Request::decode(&padded).is_err());
        // Unknown opcodes and tags.
        assert!(Request::decode(&[0x77]).is_err());
        assert!(Response::decode(&[0x42]).is_err());
        // A lying vector count cannot over-allocate: rejected up front.
        let mut lying = Vec::new();
        lying.push(super::OP_BATCH);
        lying.extend_from_slice(&1u16.to_le_bytes());
        lying.push(super::Q_PROBE);
        lying.extend_from_slice(&1u16.to_le_bytes());
        lying.push(b'c');
        lying.extend_from_slice(&1u16.to_le_bytes());
        lying.push(b'i');
        lying.extend_from_slice(&1.0f32.to_le_bytes());
        lying.extend_from_slice(&u32::MAX.to_le_bytes()); // "4 billion floats"
        assert!(matches!(
            Request::decode(&lying),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn frames_roundtrip_and_oversize_is_rejected_before_allocating() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 64).unwrap().is_none(), "clean EOF");
        // An announced length beyond the cap fails without reading further.
        let huge = (u32::MAX).to_le_bytes();
        assert!(matches!(
            read_frame(&mut &huge[..], 64),
            Err(WireError::FrameTooLarge { .. })
        ));
        // EOF inside a frame is an error, not a silent None.
        let mut partial = Vec::new();
        partial.extend_from_slice(&10u32.to_le_bytes());
        partial.extend_from_slice(b"abc");
        assert!(matches!(
            read_frame(&mut &partial[..], 64),
            Err(WireError::Io(_))
        ));
    }
}
