//! Blocking client for the `deeplens-serve` wire protocol.
//!
//! One [`Client`] wraps one TCP connection — and therefore one server-side
//! [`Session`]: requests issued through it execute with that session's
//! thread slice and snapshot view. Requests are synchronous
//! (request → reply); sheds surface as [`ClientError::Overloaded`] so load
//! generators can count them without string-matching.
//!
//! [`Session`]: deeplens_core::session::Session

use std::net::{TcpStream, ToSocketAddrs};

use deeplens_core::batch::{BatchQuery, BatchResult};

use crate::protocol::{
    read_frame, write_frame, Request, Response, ServeStats, WireError, DEFAULT_MAX_FRAME_BYTES,
};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or protocol failure.
    Wire(WireError),
    /// The server shed the request (admission queue full); retry later.
    Overloaded,
    /// The server executed (or rejected) the request and reported an error.
    Server(String),
    /// The server answered with a reply of the wrong kind.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Overloaded => write!(f, "server overloaded: request shed"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Unexpected(msg) => write!(f, "unexpected reply: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// A blocking connection to a `deeplens-serve` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_frame_bytes: usize,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// One request → one reply.
    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.encode()?)?;
        let payload = read_frame(&mut self.stream, self.max_frame_bytes)?.ok_or_else(|| {
            ClientError::Wire(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )))
        })?;
        match Response::decode(&payload)? {
            Response::Overloaded => Err(ClientError::Overloaded),
            Response::Error(msg) => Err(ClientError::Server(msg)),
            other => Ok(other),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Execute a batch of declarative queries on this connection's session.
    /// Results come back in query order, losslessly — byte-identical to
    /// direct [`deeplens_core::session::Session::batch`] execution against
    /// the same snapshots.
    pub fn batch(&mut self, queries: Vec<BatchQuery>) -> Result<Vec<BatchResult>, ClientError> {
        match self.roundtrip(&Request::Batch(queries))? {
            Response::Results(results) => Ok(results),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Materialize a feature-patch collection under `name`.
    pub fn materialize(&mut self, name: &str, rows: Vec<Vec<f32>>) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Materialize {
            name: name.into(),
            rows,
        })? {
            Response::Ack => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Build a Ball-Tree index named `index` on `collection`.
    pub fn build_index(&mut self, collection: &str, index: &str) -> Result<(), ClientError> {
        match self.roundtrip(&Request::BuildIndex {
            collection: collection.into(),
            index: index.into(),
        })? {
            Response::Ack => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetch serving counters.
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
