//! # deeplens-serve — the query-serving front end
//!
//! The paper frames DeepLens as a visual data *management system* serving
//! many concurrent analytical clients; this crate is that front door. A
//! server ([`serve`]) fronts an [`Arc<SharedCatalog>`] over TCP:
//!
//! * **connection → session**: every accepted connection runs its own
//!   [`Session`] attached to the shared catalog, so remote clients get the
//!   same snapshot isolation and enter the same multi-session thread-budget
//!   split as in-process sessions;
//! * **wire protocol** ([`protocol`]): length-prefixed frames with a
//!   compact binary encoding mirroring [`BatchQuery`]/[`BatchResult`]
//!   losslessly — served results are byte-identical to direct
//!   [`Session::batch`] execution;
//! * **cost-weighted admission** ([`admission`]): each executing request is
//!   costed in estimated microseconds via the
//!   [`DevicePlanner`](deeplens_core::optimizer::DevicePlanner), admitted
//!   against a global in-flight budget, queued FIFO to a bounded depth, and
//!   shed with an explicit `Overloaded` reply past it — backpressure
//!   instead of unbounded latency.
//!
//! ```no_run
//! use std::sync::Arc;
//! use deeplens_core::shared::SharedCatalog;
//! use deeplens_serve::{serve, Client, ServerConfig};
//!
//! let catalog = Arc::new(SharedCatalog::new());
//! let server = serve(catalog, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.ping().unwrap();
//! ```
//!
//! [`Session`]: deeplens_core::session::Session
//! [`Session::batch`]: deeplens_core::session::Session::batch
//! [`BatchQuery`]: deeplens_core::batch::BatchQuery
//! [`BatchResult`]: deeplens_core::batch::BatchResult
//! [`Arc<SharedCatalog>`]: deeplens_core::shared::SharedCatalog

pub mod admission;
pub mod client;
pub mod protocol;
pub mod server;

pub use admission::{AdmissionConfig, AdmissionController, Overloaded, Permit};
pub use client::{Client, ClientError};
pub use protocol::{Request, Response, ServeStats, WireError};
pub use server::{serve, ServerConfig, ServerHandle};
