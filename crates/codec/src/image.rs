//! Dense raster images and single-channel planes.
//!
//! [`Image`] is the interchange type of the whole DeepLens stack: the vision
//! substrate renders scenes into it, the codec compresses it, and the core
//! patch model crops sub-rectangles out of it.

use crate::error::CodecError;

/// An 8-bit interleaved RGB image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: u32,
    height: u32,
    /// Interleaved RGB, row-major, `3 * width * height` bytes.
    data: Vec<u8>,
}

impl Image {
    /// Create a black image of the given dimensions.
    pub fn new(width: u32, height: u32) -> Self {
        Image {
            width,
            height,
            data: vec![0; (width * height * 3) as usize],
        }
    }

    /// Create an image filled with a single RGB color.
    pub fn solid(width: u32, height: u32, rgb: [u8; 3]) -> Self {
        let mut data = Vec::with_capacity((width * height * 3) as usize);
        for _ in 0..width * height {
            data.extend_from_slice(&rgb);
        }
        Image {
            width,
            height,
            data,
        }
    }

    /// Build an image from raw interleaved RGB bytes.
    ///
    /// Returns an error when the buffer length does not match the dimensions.
    pub fn from_rgb(width: u32, height: u32, data: Vec<u8>) -> crate::Result<Self> {
        if data.len() != (width * height * 3) as usize {
            return Err(CodecError::InvalidHeader(format!(
                "rgb buffer of {} bytes does not match {}x{}",
                data.len(),
                width,
                height
            )));
        }
        Ok(Image {
            width,
            height,
            data,
        })
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw interleaved RGB bytes.
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the raw interleaved RGB bytes.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Number of bytes this image occupies uncompressed.
    #[inline]
    pub fn byte_size(&self) -> usize {
        self.data.len()
    }

    /// Get the pixel at `(x, y)`. Panics when out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> [u8; 3] {
        debug_assert!(x < self.width && y < self.height);
        let i = ((y * self.width + x) * 3) as usize;
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Set the pixel at `(x, y)`; out-of-bounds writes are ignored so
    /// rasterizers can draw shapes that overlap the frame border.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, rgb: [u8; 3]) {
        if x >= self.width || y >= self.height {
            return;
        }
        let i = ((y * self.width + x) * 3) as usize;
        self.data[i..i + 3].copy_from_slice(&rgb);
    }

    /// Fill an axis-aligned rectangle, clipping against the image bounds.
    pub fn fill_rect(&mut self, x0: i64, y0: i64, w: u32, h: u32, rgb: [u8; 3]) {
        let x_start = x0.max(0) as u32;
        let y_start = y0.max(0) as u32;
        let x_end = ((x0 + w as i64).max(0) as u64).min(self.width as u64) as u32;
        let y_end = ((y0 + h as i64).max(0) as u64).min(self.height as u64) as u32;
        for y in y_start..y_end {
            for x in x_start..x_end {
                self.set(x, y, rgb);
            }
        }
    }

    /// Crop a sub-rectangle, clipping to bounds. Returns a 1x1 black image if
    /// the rectangle lies entirely outside the frame.
    pub fn crop(&self, x0: i64, y0: i64, w: u32, h: u32) -> Image {
        let x_start = x0.max(0).min(self.width as i64 - 1) as u32;
        let y_start = y0.max(0).min(self.height as i64 - 1) as u32;
        let x_end = ((x0 + w as i64).max(x_start as i64 + 1) as u64).min(self.width as u64) as u32;
        let y_end = ((y0 + h as i64).max(y_start as i64 + 1) as u64).min(self.height as u64) as u32;
        let cw = x_end - x_start;
        let ch = y_end - y_start;
        let mut out = Image::new(cw, ch);
        for y in 0..ch {
            let src = (((y_start + y) * self.width + x_start) * 3) as usize;
            let dst = (y * cw * 3) as usize;
            out.data[dst..dst + (cw * 3) as usize]
                .copy_from_slice(&self.data[src..src + (cw * 3) as usize]);
        }
        out
    }

    /// Nearest-neighbour resize to a fixed resolution (used to emulate the
    /// fixed input resolution of neural networks, paper §4.2).
    pub fn resize(&self, nw: u32, nh: u32) -> Image {
        assert!(nw > 0 && nh > 0, "resize target must be non-empty");
        let mut out = Image::new(nw, nh);
        for y in 0..nh {
            let sy = (y as u64 * self.height as u64 / nh as u64) as u32;
            for x in 0..nw {
                let sx = (x as u64 * self.width as u64 / nw as u64) as u32;
                out.set(x, y, self.get(sx, sy));
            }
        }
        out
    }

    /// Split into Y, Cb, Cr planes (BT.601 full-range).
    pub fn to_ycbcr(&self) -> [Plane; 3] {
        let n = (self.width * self.height) as usize;
        let mut y_p = Vec::with_capacity(n);
        let mut cb_p = Vec::with_capacity(n);
        let mut cr_p = Vec::with_capacity(n);
        for px in self.data.chunks_exact(3) {
            let (r, g, b) = (px[0] as f32, px[1] as f32, px[2] as f32);
            y_p.push(0.299 * r + 0.587 * g + 0.114 * b);
            cb_p.push(128.0 - 0.168_736 * r - 0.331_264 * g + 0.5 * b);
            cr_p.push(128.0 + 0.5 * r - 0.418_688 * g - 0.081_312 * b);
        }
        [
            Plane {
                width: self.width,
                height: self.height,
                data: y_p,
            },
            Plane {
                width: self.width,
                height: self.height,
                data: cb_p,
            },
            Plane {
                width: self.width,
                height: self.height,
                data: cr_p,
            },
        ]
    }

    /// Reassemble an RGB image from Y, Cb, Cr planes of identical dimensions.
    pub fn from_ycbcr(planes: &[Plane; 3]) -> Image {
        let (w, h) = (planes[0].width, planes[0].height);
        debug_assert!(planes.iter().all(|p| p.width == w && p.height == h));
        let mut data = Vec::with_capacity((w * h * 3) as usize);
        for i in 0..(w * h) as usize {
            let y = planes[0].data[i];
            let cb = planes[1].data[i] - 128.0;
            let cr = planes[2].data[i] - 128.0;
            let r = y + 1.402 * cr;
            let g = y - 0.344_136 * cb - 0.714_136 * cr;
            let b = y + 1.772 * cb;
            data.push(clamp_u8(r));
            data.push(clamp_u8(g));
            data.push(clamp_u8(b));
        }
        Image {
            width: w,
            height: h,
            data,
        }
    }

    /// Mean color of the whole image, as f32 RGB.
    pub fn mean_color(&self) -> [f32; 3] {
        let mut acc = [0f64; 3];
        for px in self.data.chunks_exact(3) {
            acc[0] += px[0] as f64;
            acc[1] += px[1] as f64;
            acc[2] += px[2] as f64;
        }
        let n = (self.width * self.height).max(1) as f64;
        [
            (acc[0] / n) as f32,
            (acc[1] / n) as f32,
            (acc[2] / n) as f32,
        ]
    }
}

#[inline]
fn clamp_u8(v: f32) -> u8 {
    v.round().clamp(0.0, 255.0) as u8
}

/// A single-channel floating-point plane.
#[derive(Debug, Clone, PartialEq)]
pub struct Plane {
    /// Plane width in samples.
    pub width: u32,
    /// Plane height in samples.
    pub height: u32,
    /// Row-major samples.
    pub data: Vec<f32>,
}

impl Plane {
    /// Create a zero-filled plane.
    pub fn new(width: u32, height: u32) -> Self {
        Plane {
            width,
            height,
            data: vec![0.0; (width * height) as usize],
        }
    }

    /// Sample at `(x, y)`, clamping coordinates to the border (the DCT tiler
    /// uses this to pad edge blocks).
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64) -> f32 {
        let cx = x.clamp(0, self.width as i64 - 1) as u32;
        let cy = y.clamp(0, self.height as i64 - 1) as u32;
        self.data[(cy * self.width + cx) as usize]
    }

    /// Set the sample at `(x, y)`; out-of-bounds writes are ignored.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, v: f32) {
        if x < self.width && y < self.height {
            self.data[(y * self.width + x) as usize] = v;
        }
    }

    /// 2×2 box-filter downsample (chroma subsampling). Dimensions round up.
    pub fn downsample2(&self) -> Plane {
        let nw = self.width.div_ceil(2);
        let nh = self.height.div_ceil(2);
        let mut out = Plane::new(nw, nh);
        for y in 0..nh {
            for x in 0..nw {
                let mut acc = 0.0;
                for (dx, dy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
                    acc += self.get_clamped((x * 2 + dx) as i64, (y * 2 + dy) as i64);
                }
                out.set(x, y, acc / 4.0);
            }
        }
        out
    }

    /// Nearest-neighbour 2× upsample to the requested dimensions.
    pub fn upsample2(&self, tw: u32, th: u32) -> Plane {
        let mut out = Plane::new(tw, th);
        for y in 0..th {
            for x in 0..tw {
                out.set(x, y, self.get_clamped((x / 2) as i64, (y / 2) as i64));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solid_roundtrips_pixels() {
        let img = Image::solid(4, 3, [1, 2, 3]);
        assert_eq!(img.get(0, 0), [1, 2, 3]);
        assert_eq!(img.get(3, 2), [1, 2, 3]);
        assert_eq!(img.byte_size(), 36);
    }

    #[test]
    fn from_rgb_validates_length() {
        assert!(Image::from_rgb(2, 2, vec![0; 12]).is_ok());
        assert!(Image::from_rgb(2, 2, vec![0; 11]).is_err());
    }

    #[test]
    fn fill_rect_clips() {
        let mut img = Image::new(4, 4);
        img.fill_rect(-2, -2, 4, 4, [255, 0, 0]);
        assert_eq!(img.get(0, 0), [255, 0, 0]);
        assert_eq!(img.get(1, 1), [255, 0, 0]);
        assert_eq!(img.get(2, 2), [0, 0, 0]);
    }

    #[test]
    fn crop_respects_bounds() {
        let mut img = Image::new(8, 8);
        img.fill_rect(2, 2, 2, 2, [9, 9, 9]);
        let c = img.crop(2, 2, 2, 2);
        assert_eq!(c.width(), 2);
        assert_eq!(c.height(), 2);
        assert_eq!(c.get(0, 0), [9, 9, 9]);

        // Fully out-of-bounds crop degrades to a tiny clipped image.
        let c2 = img.crop(100, 100, 4, 4);
        assert!(c2.width() >= 1 && c2.height() >= 1);
    }

    #[test]
    fn ycbcr_roundtrip_is_near_lossless() {
        let mut img = Image::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                img.set(x, y, [(x * 16) as u8, (y * 16) as u8, ((x + y) * 8) as u8]);
            }
        }
        let planes = img.to_ycbcr();
        let back = Image::from_ycbcr(&planes);
        for (a, b) in img.data().iter().zip(back.data()) {
            assert!(
                (*a as i32 - *b as i32).abs() <= 2,
                "channel drift too large"
            );
        }
    }

    #[test]
    fn resize_preserves_solid_color() {
        let img = Image::solid(10, 10, [7, 8, 9]);
        let r = img.resize(3, 5);
        assert_eq!(r.width(), 3);
        assert_eq!(r.height(), 5);
        assert_eq!(r.get(2, 4), [7, 8, 9]);
    }

    #[test]
    fn downsample_upsample_shapes() {
        let p = Plane::new(5, 7);
        let d = p.downsample2();
        assert_eq!((d.width, d.height), (3, 4));
        let u = d.upsample2(5, 7);
        assert_eq!((u.width, u.height), (5, 7));
    }

    #[test]
    fn mean_color_of_solid() {
        let img = Image::solid(6, 6, [10, 20, 30]);
        let m = img.mean_color();
        assert!((m[0] - 10.0).abs() < 1e-3);
        assert!((m[1] - 20.0).abs() < 1e-3);
        assert!((m[2] - 30.0).abs() < 1e-3);
    }
}
