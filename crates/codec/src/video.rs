//! GOP-structured video container with sequential decode semantics.
//!
//! An encoded video is a header followed by length-prefixed frame packets.
//! I-frames are intra-coded (see [`crate::intra`]); P-frames carry one motion
//! vector per 16×16 macroblock plus DCT-coded residuals. Decoding a P-frame
//! requires the reconstruction of its predecessor, so — exactly as with the
//! H.264 streams in the paper — random access is only possible at I-frame
//! boundaries, and the "Encoded File" layout (one I-frame at the start)
//! forces a full sequential scan.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::bitstream::{BitReader, BitWriter};
use crate::error::CodecError;
use crate::image::{Image, Plane};
use crate::intra::{decode_plane, decode_planes, encode_plane, encode_planes};
use crate::motion::{self, MotionVector, MB};
use crate::quant::{Quality, QuantTables};

/// Magic number prefixing encoded video streams ("DLV1").
pub const VIDEO_MAGIC: u32 = 0x444C_5631;

/// Process-wide count of frame packets reconstructed by [`VideoDecoder`]
/// (the encoder's own reconstruction loop is not counted — it is encode
/// work, not scan work). Monotonic; read it before and after an operation
/// to measure how much decode work the operation actually paid.
static FRAMES_DECODED: AtomicU64 = AtomicU64::new(0);

/// Total frames decoded by every [`VideoDecoder`] in this process so far.
///
/// The shared-scan ETL tests assert "each frame window is decoded exactly
/// once per batch" against deltas of this counter.
pub fn frames_decoded() -> u64 {
    FRAMES_DECODED.load(Ordering::Relaxed)
}

/// Frame packet kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Intra-coded frame: decodable standalone.
    Intra,
    /// Predicted frame: requires the previous frame's reconstruction.
    Predicted,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Intra => 0,
            FrameKind::Predicted => 1,
        }
    }

    fn from_byte(b: u8) -> crate::Result<Self> {
        match b {
            0 => Ok(FrameKind::Intra),
            1 => Ok(FrameKind::Predicted),
            other => Err(CodecError::CorruptStream(format!(
                "unknown frame kind {other}"
            ))),
        }
    }
}

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoConfig {
    /// Lossy quality preset applied to all frames.
    pub quality: Quality,
    /// Distance between I-frames; `1` means intra-only, [`u32::MAX`] means a
    /// single leading I-frame (pure sequential stream).
    pub gop: u32,
    /// Nominal frames per second (metadata only).
    pub fps: f32,
}

impl Default for VideoConfig {
    fn default() -> Self {
        VideoConfig {
            quality: Quality::High,
            gop: 30,
            fps: 30.0,
        }
    }
}

impl VideoConfig {
    /// A configuration emulating a fully-sequential encoded stream (the
    /// paper's "Encoded File"): one I-frame, everything else predicted.
    pub fn sequential(quality: Quality) -> Self {
        VideoConfig {
            quality,
            gop: u32::MAX,
            fps: 30.0,
        }
    }
}

/// Parsed stream header.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoHeader {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Quality factor frames were encoded with.
    pub quality: Quality,
    /// Configured GOP length.
    pub gop: u32,
    /// Nominal frames per second.
    pub fps: f32,
    /// Number of frame packets in the stream.
    pub frame_count: u32,
}

// ---- little-endian byte helpers for the container framing ----

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], pos: &mut usize) -> crate::Result<u32> {
    let end = *pos + 4;
    if end > buf.len() {
        return Err(CodecError::UnexpectedEof);
    }
    let v = u32::from_le_bytes(buf[*pos..end].try_into().expect("4-byte slice"));
    *pos = end;
    Ok(v)
}

fn get_u16(buf: &[u8], pos: &mut usize) -> crate::Result<u16> {
    let end = *pos + 2;
    if end > buf.len() {
        return Err(CodecError::UnexpectedEof);
    }
    let v = u16::from_le_bytes(buf[*pos..end].try_into().expect("2-byte slice"));
    *pos = end;
    Ok(v)
}

/// Decode one frame payload against an optional reference, returning the
/// reconstructed YCbCr planes (chroma at half resolution).
///
/// Shared by the decoder and by the encoder's reconstruction loop so both
/// sides stay bit-exact and prediction never drifts.
fn decode_frame_payload(
    kind: FrameKind,
    payload: &[u8],
    width: u32,
    height: u32,
    tables: &QuantTables,
    reference: Option<&[Plane; 3]>,
) -> crate::Result<[Plane; 3]> {
    let cw = width.div_ceil(2);
    let ch = height.div_ceil(2);
    let mut r = BitReader::new(payload);
    match kind {
        FrameKind::Intra => {
            let img = decode_planes(width, height, tables, &mut r)?;
            let [y, cb, cr] = img.to_ycbcr();
            Ok([y, cb.downsample2(), cr.downsample2()])
        }
        FrameKind::Predicted => {
            let reference = reference
                .ok_or_else(|| CodecError::CorruptStream("P-frame without reference".into()))?;
            let mb_cols = (width as usize).div_ceil(MB);
            let mb_rows = (height as usize).div_ceil(MB);
            let mut vectors = Vec::with_capacity(mb_cols * mb_rows);
            for _ in 0..mb_cols * mb_rows {
                let dx = r.get_se()?;
                let dy = r.get_se()?;
                vectors.push(MotionVector { dx, dy });
            }
            let res_y = decode_plane(width, height, &tables.luma, 0.0, &mut r)?;
            let res_cb = decode_plane(cw, ch, &tables.chroma, 0.0, &mut r)?;
            let res_cr = decode_plane(cw, ch, &tables.chroma, 0.0, &mut r)?;
            let pred_y = motion::compensate(&reference[0], width, height, &vectors, mb_cols, 1);
            let pred_cb = motion::compensate(&reference[1], cw, ch, &vectors, mb_cols, 2);
            let pred_cr = motion::compensate(&reference[2], cw, ch, &vectors, mb_cols, 2);
            Ok([
                motion::reconstruct(&pred_y, &res_y),
                motion::reconstruct(&pred_cb, &res_cb),
                motion::reconstruct(&pred_cr, &res_cr),
            ])
        }
    }
}

fn planes_to_image(planes: &[Plane; 3], width: u32, height: u32) -> Image {
    let y = planes[0].clone();
    let cb = planes[1].upsample2(width, height);
    let cr = planes[2].upsample2(width, height);
    Image::from_ycbcr(&[y, cb, cr])
}

/// Streaming video encoder.
#[derive(Debug)]
pub struct VideoEncoder {
    width: u32,
    height: u32,
    cfg: VideoConfig,
    tables: QuantTables,
    frames_since_i: u32,
    /// Reconstructed previous frame (what the decoder will see).
    reference: Option<[Plane; 3]>,
    packets: Vec<(FrameKind, Vec<u8>)>,
}

impl VideoEncoder {
    /// Create an encoder for frames of the given dimensions.
    pub fn new(width: u32, height: u32, cfg: VideoConfig) -> Self {
        VideoEncoder {
            width,
            height,
            tables: QuantTables::for_quality(cfg.quality),
            cfg,
            frames_since_i: 0,
            reference: None,
            packets: Vec::new(),
        }
    }

    /// Append a frame to the stream.
    pub fn push(&mut self, frame: &Image) -> crate::Result<()> {
        if (frame.width(), frame.height()) != (self.width, self.height) {
            return Err(CodecError::DimensionMismatch {
                expected: (self.width, self.height),
                actual: (frame.width(), frame.height()),
            });
        }
        let intra = self.reference.is_none() || self.frames_since_i >= self.cfg.gop;
        let kind = if intra {
            FrameKind::Intra
        } else {
            FrameKind::Predicted
        };
        let payload = match kind {
            FrameKind::Intra => {
                let mut w = BitWriter::new();
                encode_planes(frame, &self.tables, &mut w);
                self.frames_since_i = 1;
                w.finish()
            }
            FrameKind::Predicted => {
                let reference = self.reference.as_ref().expect("P-frame requires reference");
                let [cur_y, cur_cb, cur_cr] = frame.to_ycbcr();
                let cur_cb = cur_cb.downsample2();
                let cur_cr = cur_cr.downsample2();
                let cw = self.width.div_ceil(2);
                let ch = self.height.div_ceil(2);
                let mb_cols = (self.width as usize).div_ceil(MB);
                let mb_rows = (self.height as usize).div_ceil(MB);

                let mut w = BitWriter::new();
                let mut vectors = Vec::with_capacity(mb_cols * mb_rows);
                for by in 0..mb_rows {
                    for bx in 0..mb_cols {
                        let v = motion::estimate(&cur_y, &reference[0], bx, by);
                        w.put_se(v.dx);
                        w.put_se(v.dy);
                        vectors.push(v);
                    }
                }
                let pred_y = motion::compensate(
                    &reference[0],
                    self.width,
                    self.height,
                    &vectors,
                    mb_cols,
                    1,
                );
                let pred_cb = motion::compensate(&reference[1], cw, ch, &vectors, mb_cols, 2);
                let pred_cr = motion::compensate(&reference[2], cw, ch, &vectors, mb_cols, 2);
                encode_plane(
                    &motion::residual(&cur_y, &pred_y),
                    &self.tables.luma,
                    0.0,
                    &mut w,
                );
                encode_plane(
                    &motion::residual(&cur_cb, &pred_cb),
                    &self.tables.chroma,
                    0.0,
                    &mut w,
                );
                encode_plane(
                    &motion::residual(&cur_cr, &pred_cr),
                    &self.tables.chroma,
                    0.0,
                    &mut w,
                );
                self.frames_since_i += 1;
                w.finish()
            }
        };
        // Reconstruct exactly as the decoder will, so prediction never drifts.
        let recon = decode_frame_payload(
            kind,
            &payload,
            self.width,
            self.height,
            &self.tables,
            self.reference.as_ref(),
        )?;
        self.reference = Some(recon);
        self.packets.push((kind, payload));
        Ok(())
    }

    /// Number of frames pushed so far.
    pub fn frame_count(&self) -> usize {
        self.packets.len()
    }

    /// Serialize the container.
    pub fn finish(self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u32(&mut buf, VIDEO_MAGIC);
        put_u16(&mut buf, self.width as u16);
        put_u16(&mut buf, self.height as u16);
        buf.push(self.cfg.quality.factor());
        put_u32(&mut buf, self.cfg.gop);
        put_u16(
            &mut buf,
            (self.cfg.fps * 100.0).round().clamp(0.0, 65535.0) as u16,
        );
        put_u32(&mut buf, self.packets.len() as u32);
        for (kind, payload) in &self.packets {
            buf.push(kind.to_byte());
            put_u32(&mut buf, payload.len() as u32);
            buf.extend_from_slice(payload);
        }
        buf
    }
}

/// Streaming, strictly-sequential video decoder.
#[derive(Debug)]
pub struct VideoDecoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    header: VideoHeader,
    tables: QuantTables,
    reference: Option<[Plane; 3]>,
    decoded: u32,
}

impl<'a> VideoDecoder<'a> {
    /// Parse the header and position the decoder at the first frame.
    pub fn new(bytes: &'a [u8]) -> crate::Result<Self> {
        let mut pos = 0usize;
        let magic = get_u32(bytes, &mut pos)?;
        if magic != VIDEO_MAGIC {
            return Err(CodecError::BadMagic(magic));
        }
        let width = get_u16(bytes, &mut pos)? as u32;
        let height = get_u16(bytes, &mut pos)? as u32;
        if width == 0 || height == 0 {
            return Err(CodecError::InvalidHeader("zero video dimension".into()));
        }
        if pos >= bytes.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let qf = bytes[pos];
        pos += 1;
        let gop = get_u32(bytes, &mut pos)?;
        let fps = get_u16(bytes, &mut pos)? as f32 / 100.0;
        let frame_count = get_u32(bytes, &mut pos)?;
        let quality = Quality::Custom(qf);
        Ok(VideoDecoder {
            bytes,
            pos,
            header: VideoHeader {
                width,
                height,
                quality,
                gop,
                fps,
                frame_count,
            },
            tables: QuantTables::for_quality(quality),
            reference: None,
            decoded: 0,
        })
    }

    /// Stream header.
    pub fn header(&self) -> &VideoHeader {
        &self.header
    }

    /// Frames remaining to decode.
    pub fn remaining(&self) -> u32 {
        self.header.frame_count - self.decoded
    }

    /// Decode the next frame, or `None` at end of stream.
    // Not an Iterator impl: decoding borrows the reader mutably and callers
    // need the struct's other accessors (`remaining`) between frames.
    #[allow(clippy::should_implement_trait)]
    pub fn next_frame(&mut self) -> Option<crate::Result<Image>> {
        if self.decoded >= self.header.frame_count {
            return None;
        }
        Some(self.decode_one())
    }

    fn decode_one(&mut self) -> crate::Result<Image> {
        if self.pos >= self.bytes.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let kind = FrameKind::from_byte(self.bytes[self.pos])?;
        self.pos += 1;
        let len = get_u32(self.bytes, &mut self.pos)? as usize;
        if self.pos + len > self.bytes.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let payload = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        let planes = decode_frame_payload(
            kind,
            payload,
            self.header.width,
            self.header.height,
            &self.tables,
            self.reference.as_ref(),
        )?;
        let img = planes_to_image(&planes, self.header.width, self.header.height);
        self.reference = Some(planes);
        self.decoded += 1;
        FRAMES_DECODED.fetch_add(1, Ordering::Relaxed);
        Ok(img)
    }
}

impl Iterator for VideoDecoder<'_> {
    type Item = crate::Result<Image>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_frame()
    }
}

/// Convenience: encode a whole slice of frames.
pub fn encode_video(frames: &[Image], cfg: VideoConfig) -> crate::Result<Vec<u8>> {
    let (w, h) = match frames.first() {
        Some(f) => (f.width(), f.height()),
        None => return Err(CodecError::InvalidHeader("empty frame list".into())),
    };
    let mut enc = VideoEncoder::new(w, h, cfg);
    for f in frames {
        enc.push(f)?;
    }
    Ok(enc.finish())
}

/// Convenience: decode a whole stream into memory.
pub fn decode_video(bytes: &[u8]) -> crate::Result<Vec<Image>> {
    VideoDecoder::new(bytes)?.collect()
}

/// Segment a frame sequence into independently-decodable encoded clips of at
/// most `clip_len` frames each (the paper's "Segmented File" building block).
pub fn segment_video(
    frames: &[Image],
    clip_len: usize,
    cfg: VideoConfig,
) -> crate::Result<Vec<Vec<u8>>> {
    assert!(clip_len > 0, "clip length must be positive");
    frames
        .chunks(clip_len)
        .map(|chunk| encode_video(chunk, cfg))
        .collect()
}

/// Stable content fingerprint of an encoded stream: FNV-1a over the
/// stream's length followed by its bytes. The decoded-frame cache keys
/// entries on this rather than on a caller-supplied name, so two sources
/// that happen to share a name but carry different bytes do not alias each
/// other's frames. (A 64-bit content hash, not a cryptographic digest —
/// length mixing rules out same-prefix truncations, but callers needing
/// adversarial collision resistance should key on identity themselves.)
pub fn stream_fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in (bytes.len() as u64)
        .to_le_bytes()
        .iter()
        .chain(bytes.iter())
    {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct CacheEntry {
    img: Arc<Image>,
    last_used: u64,
}

/// A bounded cache of decoded frames, keyed by
/// `(stream fingerprint, frame number)`.
///
/// Inter-coded streams force sequential decoding — reconstructing frame `n`
/// requires frames `0..n` — so decode cost is the dominant, *repeated* cost
/// of running several featurization passes over one video. The cache lets a
/// shared-scan engine pay that cost once: [`FrameCache::scan_window`]
/// returns every frame of a window as shared [`Arc<Image>`] handles,
/// serving them from the cache when a previous scan already decoded them
/// and decoding (then caching) otherwise.
///
/// The cache is **bounded** at `capacity` frames with LRU eviction; a
/// window longer than the capacity still scans correctly — the returned
/// handles are complete — but only its most recent `capacity` frames stay
/// resident for later scans. `capacity == 0` disables retention entirely
/// (every scan decodes).
///
/// Not internally synchronized: callers that share one cache across
/// threads wrap it in a lock (the session layer does).
pub struct FrameCache {
    capacity: usize,
    entries: HashMap<(u64, u64), CacheEntry>,
    clock: u64,
    hits: u64,
    misses: u64,
    decoded: u64,
}

impl std::fmt::Debug for FrameCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FrameCache({}/{} frames, {} hits, {} misses)",
            self.entries.len(),
            self.capacity,
            self.hits,
            self.misses
        )
    }
}

impl FrameCache {
    /// An empty cache retaining at most `capacity` decoded frames.
    pub fn new(capacity: usize) -> Self {
        FrameCache {
            capacity,
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            decoded: 0,
        }
    }

    /// Maximum number of resident frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of frames currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no frames.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Frames this cache has decoded across every
    /// [`FrameCache::scan_window`] call — the decode work its scans
    /// actually paid (unlike the process-global [`frames_decoded`], this
    /// counter is unperturbed by unrelated decoders).
    pub fn decoded(&self) -> u64 {
        self.decoded
    }

    /// Fetch one cached frame, refreshing its recency.
    pub fn get(&mut self, stream: u64, frame_no: u64) -> Option<Arc<Image>> {
        self.clock += 1;
        match self.entries.get_mut(&(stream, frame_no)) {
            Some(e) => {
                e.last_used = self.clock;
                self.hits += 1;
                Some(e.img.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a decoded frame, evicting the least-recently-used entry when
    /// the cache is full. A zero-capacity cache stores nothing.
    pub fn insert(&mut self, stream: u64, frame_no: u64, img: Arc<Image>) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&(stream, frame_no)) {
            // Linear victim scan on purpose: at sane capacities (hundreds of
            // frames) one pass over the keys costs ~0.01% of decoding the
            // frame being inserted, which an ordered side-index would spend
            // its own upkeep to save.
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(
            (stream, frame_no),
            CacheEntry {
                img,
                last_used: self.clock,
            },
        );
    }

    /// Decode (or fetch) every frame of `range` from the encoded stream
    /// `bytes`, returning `(frame_no, frame)` pairs in frame order. A
    /// window reaching past the end of the stream is an error — even an
    /// empty one, so callers validating a window learn about the overrun
    /// instead of silently receiving nothing.
    pub fn scan_window(
        &mut self,
        bytes: &[u8],
        range: Range<u64>,
    ) -> crate::Result<Vec<(u64, Arc<Image>)>> {
        if range.start >= range.end {
            let available = u64::from(VideoDecoder::new(bytes)?.header().frame_count);
            if range.end > available {
                return Err(CodecError::InvalidHeader(format!(
                    "frame window {}..{} exceeds stream length {available}",
                    range.start, range.end
                )));
            }
            return Ok(Vec::new());
        }
        let needed: Vec<u64> = range.collect();
        self.scan_frames(bytes, &needed)
    }

    /// Decode (or fetch) exactly the frames in `needed` (sorted ascending,
    /// unique) from the encoded stream `bytes`, returning `(frame_no,
    /// frame)` pairs in that order.
    ///
    /// When every needed frame is resident the scan costs zero decodes.
    /// Otherwise the stream is decoded sequentially from its start through
    /// the last **missing** frame — inter-coded frames need their full
    /// reference chain, so a partial hit still pays one prefix scan, but a
    /// resident suffix is served straight from cache without re-decoding.
    /// Only missing needed frames touch the LRU: gap frames between sparse
    /// windows are dropped as the decoder moves past them, and frames that
    /// are already resident keep their original entries (and `Arc`s), so a
    /// scan can never displace the residents it is about to return. Either
    /// way the stream is decoded **at most once** per call.
    pub fn scan_frames(
        &mut self,
        bytes: &[u8],
        needed: &[u64],
    ) -> crate::Result<Vec<(u64, Arc<Image>)>> {
        debug_assert!(needed.windows(2).all(|w| w[0] < w[1]), "sorted + unique");
        if needed.is_empty() {
            return Ok(Vec::new());
        }
        let stream = stream_fingerprint(bytes);
        // Serve entirely from cache when possible.
        let cached: Vec<Option<Arc<Image>>> = needed.iter().map(|&t| self.get(stream, t)).collect();
        if cached.iter().all(Option::is_some) {
            return Ok(needed
                .iter()
                .copied()
                .zip(cached.into_iter().flatten())
                .collect());
        }
        let mut decoder = VideoDecoder::new(bytes)?;
        let available = u64::from(decoder.header().frame_count);
        let last = *needed.last().expect("non-empty");
        if last >= available {
            return Err(CodecError::InvalidHeader(format!(
                "frame {last} exceeds stream length {available}"
            )));
        }
        let missing: Vec<u64> = needed
            .iter()
            .zip(&cached)
            .filter(|(_, hit)| hit.is_none())
            .map(|(&t, _)| t)
            .collect();
        let last_missing = *missing.last().expect("not fully cached");
        let mut fresh = Vec::with_capacity(missing.len());
        let mut want = missing.iter().copied().peekable();
        for t in 0..=last_missing {
            let img = match decoder.next_frame() {
                Some(frame) => Arc::new(frame?),
                None => {
                    return Err(CodecError::UnexpectedEof);
                }
            };
            self.decoded += 1;
            if want.peek() == Some(&t) {
                want.next();
                self.insert(stream, t, img.clone());
                fresh.push(img);
            }
        }
        let mut fresh = fresh.into_iter();
        Ok(needed
            .iter()
            .copied()
            .zip(cached)
            .map(|(t, hit)| {
                let img = hit.unwrap_or_else(|| fresh.next().expect("decoded every missing frame"));
                (t, img)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::psnr;

    /// Synthetic moving-square clip: strong temporal redundancy.
    fn moving_square(n: usize, w: u32, h: u32) -> Vec<Image> {
        (0..n)
            .map(|t| {
                let mut img = Image::solid(w, h, [40, 60, 80]);
                img.fill_rect(2 + t as i64 * 2, 4, 10, 10, [220, 40, 40]);
                img
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_frame_count_and_quality() {
        let frames = moving_square(8, 48, 32);
        let bytes = encode_video(&frames, VideoConfig::default()).unwrap();
        let decoded = decode_video(&bytes).unwrap();
        assert_eq!(decoded.len(), frames.len());
        for (orig, dec) in frames.iter().zip(&decoded) {
            assert!(psnr(orig, dec) > 28.0, "frame PSNR too low");
        }
    }

    #[test]
    fn sequential_config_emits_single_i_frame() {
        let frames = moving_square(6, 32, 32);
        let mut enc = VideoEncoder::new(32, 32, VideoConfig::sequential(Quality::Medium));
        for f in &frames {
            enc.push(f).unwrap();
        }
        let kinds: Vec<FrameKind> = enc.packets.iter().map(|(k, _)| *k).collect();
        assert_eq!(kinds[0], FrameKind::Intra);
        assert!(kinds[1..].iter().all(|k| *k == FrameKind::Predicted));
    }

    #[test]
    fn gop_inserts_periodic_i_frames() {
        let frames = moving_square(7, 32, 32);
        let mut enc = VideoEncoder::new(
            32,
            32,
            VideoConfig {
                gop: 3,
                ..Default::default()
            },
        );
        for f in &frames {
            enc.push(f).unwrap();
        }
        let kinds: Vec<FrameKind> = enc.packets.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            kinds,
            vec![
                FrameKind::Intra,
                FrameKind::Predicted,
                FrameKind::Predicted,
                FrameKind::Intra,
                FrameKind::Predicted,
                FrameKind::Predicted,
                FrameKind::Intra,
            ]
        );
    }

    #[test]
    fn inter_coding_compresses_static_content() {
        // A static but textured scene: intra frames pay for the texture every
        // time, P-frames only code the (near-zero) temporal residual.
        let mut textured = Image::new(64, 48);
        for y in 0..48u32 {
            for x in 0..64u32 {
                let v = ((x * 13 + y * 7) % 97) as u8;
                textured.set(x, y, [v.wrapping_mul(2), v, 255 - v]);
            }
        }
        let frames: Vec<Image> = (0..10).map(|_| textured.clone()).collect();
        let seq = encode_video(&frames, VideoConfig::sequential(Quality::Medium)).unwrap();
        let intra_only = encode_video(
            &frames,
            VideoConfig {
                gop: 1,
                quality: Quality::Medium,
                fps: 30.0,
            },
        )
        .unwrap();
        assert!(
            (seq.len() as f64) < intra_only.len() as f64 * 0.5,
            "sequential ({}) should be <50% of intra-only ({})",
            seq.len(),
            intra_only.len()
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut enc = VideoEncoder::new(32, 32, VideoConfig::default());
        let bad = Image::new(16, 16);
        assert!(matches!(
            enc.push(&bad),
            Err(CodecError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_video_rejected() {
        assert!(encode_video(&[], VideoConfig::default()).is_err());
    }

    #[test]
    fn header_fields_roundtrip() {
        let frames = moving_square(3, 32, 32);
        let cfg = VideoConfig {
            quality: Quality::Custom(73),
            gop: 5,
            fps: 24.0,
        };
        let bytes = encode_video(&frames, cfg).unwrap();
        let dec = VideoDecoder::new(&bytes).unwrap();
        let h = dec.header();
        assert_eq!(h.width, 32);
        assert_eq!(h.height, 32);
        assert_eq!(h.quality.factor(), 73);
        assert_eq!(h.gop, 5);
        assert!((h.fps - 24.0).abs() < 0.01);
        assert_eq!(h.frame_count, 3);
    }

    #[test]
    fn truncated_container_detected() {
        let frames = moving_square(4, 32, 32);
        let bytes = encode_video(&frames, VideoConfig::default()).unwrap();
        let mut dec = VideoDecoder::new(&bytes[..bytes.len() - 10]).unwrap();
        let mut saw_err = false;
        for f in &mut dec {
            if f.is_err() {
                saw_err = true;
                break;
            }
        }
        assert!(saw_err, "truncation must surface as an error");
    }

    #[test]
    fn segmentation_produces_independent_clips() {
        let frames = moving_square(10, 32, 32);
        let clips = segment_video(&frames, 4, VideoConfig::sequential(Quality::High)).unwrap();
        assert_eq!(clips.len(), 3); // 4 + 4 + 2
                                    // Every clip decodes standalone.
        let mut total = 0;
        for clip in &clips {
            total += decode_video(clip).unwrap().len();
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn bad_magic_video() {
        let frames = moving_square(2, 16, 16);
        let mut bytes = encode_video(&frames, VideoConfig::default()).unwrap();
        bytes[0] = 0;
        assert!(matches!(
            VideoDecoder::new(&bytes),
            Err(CodecError::BadMagic(_))
        ));
    }

    #[test]
    fn decode_counter_tracks_decoded_frames() {
        let frames = moving_square(5, 32, 32);
        let bytes = encode_video(&frames, VideoConfig::default()).unwrap();
        let before = frames_decoded();
        decode_video(&bytes).unwrap();
        // Other tests in this process may decode concurrently, so the
        // global counter can only be bounded from below here; exact
        // decode-once assertions go through `FrameCache::decoded`.
        assert!(frames_decoded() - before >= 5);
    }

    #[test]
    fn frame_cache_scans_a_stream_at_most_once() {
        let frames = moving_square(8, 32, 32);
        let bytes = encode_video(&frames, VideoConfig::sequential(Quality::High)).unwrap();
        let mut cache = FrameCache::new(32);

        let window = cache.scan_window(&bytes, 2..7).unwrap();
        assert_eq!(
            window.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![2, 3, 4, 5, 6]
        );
        // Sequential stream: the reference chain forces a prefix decode,
        // but exactly one.
        assert_eq!(cache.decoded(), 7);

        // A second overlapping scan inside the window is pure cache.
        let again = cache.scan_window(&bytes, 3..6).unwrap();
        assert_eq!(cache.decoded(), 7, "no further decode work");
        for ((t, img), (t2, img2)) in window[1..4].iter().zip(&again) {
            assert_eq!(t, t2);
            assert!(Arc::ptr_eq(img, img2), "same decoded frame is shared");
        }
        assert!(cache.hits() > 0);
    }

    #[test]
    fn frame_cache_is_bounded_with_lru_eviction() {
        let frames = moving_square(6, 16, 16);
        let bytes = encode_video(&frames, VideoConfig::default()).unwrap();
        let mut cache = FrameCache::new(3);
        cache.scan_window(&bytes, 0..6).unwrap();
        assert_eq!(cache.len(), 3, "capacity bounds residency");
        let stream = stream_fingerprint(&bytes);
        // The most recent frames survive; the oldest were evicted.
        assert!(cache.get(stream, 5).is_some());
        assert!(cache.get(stream, 0).is_none());
        // Zero capacity stores nothing but still scans correctly.
        let mut none = FrameCache::new(0);
        assert_eq!(none.scan_window(&bytes, 0..6).unwrap().len(), 6);
        assert_eq!(none.len(), 0);
    }

    #[test]
    fn frame_cache_keys_on_stream_bytes_not_names() {
        let a = encode_video(&moving_square(4, 16, 16), VideoConfig::default()).unwrap();
        let mut other_frames = moving_square(4, 16, 16);
        other_frames[2].fill_rect(1, 1, 4, 4, [0, 255, 0]);
        let b = encode_video(&other_frames, VideoConfig::default()).unwrap();
        assert_ne!(stream_fingerprint(&a), stream_fingerprint(&b));
        let mut cache = FrameCache::new(16);
        let fa = cache.scan_window(&a, 2..3).unwrap();
        let fb = cache.scan_window(&b, 2..3).unwrap();
        assert!(!Arc::ptr_eq(&fa[0].1, &fb[0].1), "streams never alias");
    }

    #[test]
    fn frame_cache_window_bounds_checked() {
        let frames = moving_square(4, 16, 16);
        let bytes = encode_video(&frames, VideoConfig::default()).unwrap();
        let mut cache = FrameCache::new(8);
        assert!(cache.scan_window(&bytes, 2..9).is_err());
        assert!(cache.scan_window(&bytes, 3..3).unwrap().is_empty());
        // An empty window is still validated against the stream: a caller
        // probing 9..9 of a 4-frame stream gets the overrun, not Ok(vec![]).
        assert!(cache.scan_window(&bytes, 9..9).is_err());
        assert!(cache.scan_window(&[1, 2, 3], 0..1).is_err());
        assert!(cache.scan_window(&[1, 2, 3], 0..0).is_err());
    }

    #[test]
    fn frame_cache_scan_frames_retains_only_needed() {
        let frames = moving_square(8, 16, 16);
        let bytes = encode_video(&frames, VideoConfig::sequential(Quality::High)).unwrap();
        let mut cache = FrameCache::new(32);
        // Sparse needed set: the reference chain forces decoding 0..=6, but
        // only the two needed frames are retained or returned.
        let got = cache.scan_frames(&bytes, &[1, 6]).unwrap();
        assert_eq!(got.iter().map(|(t, _)| *t).collect::<Vec<_>>(), vec![1, 6]);
        assert_eq!(cache.decoded(), 7, "prefix decoded once");
        assert_eq!(cache.len(), 2, "gap frames are not retained");
        // Fully resident: zero further decodes.
        cache.scan_frames(&bytes, &[1, 6]).unwrap();
        assert_eq!(cache.decoded(), 7);
        // Out-of-range needed frame errors; empty set is a no-op.
        assert!(cache.scan_frames(&bytes, &[3, 11]).is_err());
        assert!(cache.scan_frames(&bytes, &[]).unwrap().is_empty());
    }

    #[test]
    fn frame_cache_disjoint_windows_never_displace_requested_residents() {
        let frames = moving_square(12, 16, 16);
        let bytes = encode_video(&frames, VideoConfig::sequential(Quality::High)).unwrap();
        // Capacity holds exactly the two requested windows and nothing
        // more: if the gap frames 4..8 touched the LRU, the first window
        // would be evicted before the second scan returned.
        let mut cache = FrameCache::new(8);
        cache.scan_window(&bytes, 0..4).unwrap();
        assert_eq!(cache.decoded(), 4);
        cache.scan_window(&bytes, 8..12).unwrap();
        assert_eq!(cache.decoded(), 16, "reference chain re-decoded once");
        let stream = stream_fingerprint(&bytes);
        for t in (0..4).chain(8..12) {
            assert!(
                cache.get(stream, t).is_some(),
                "requested frame {t} was displaced"
            );
        }
        assert_eq!(cache.len(), 8, "gap frames never entered the cache");
        // Decode-counter regression: re-scanning the two disjoint windows
        // together is pure cache.
        let union: Vec<u64> = (0..4).chain(8..12).collect();
        let got = cache.scan_frames(&bytes, &union).unwrap();
        assert_eq!(got.iter().map(|(t, _)| *t).collect::<Vec<_>>(), union);
        assert_eq!(cache.decoded(), 16, "disjoint-window rescan costs zero");
    }

    #[test]
    fn frame_cache_partial_hit_stops_at_last_missing_frame() {
        let frames = moving_square(8, 16, 16);
        let bytes = encode_video(&frames, VideoConfig::sequential(Quality::High)).unwrap();
        let mut cache = FrameCache::new(32);
        let first = cache.scan_frames(&bytes, &[1, 6]).unwrap();
        assert_eq!(cache.decoded(), 7);
        // Frame 0 is the only miss, so the prefix decode stops right
        // after it instead of re-decoding through the resident frame 6.
        let second = cache.scan_frames(&bytes, &[0, 1, 6]).unwrap();
        assert_eq!(
            second.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![0, 1, 6]
        );
        assert_eq!(cache.decoded(), 8, "resident suffix served from cache");
        // Resident frames keep their original entries: the rescan hands
        // back the very same decoded rasters, not fresh duplicates.
        assert!(Arc::ptr_eq(&first[0].1, &second[1].1));
        assert!(Arc::ptr_eq(&first[1].1, &second[2].1));
    }
}
