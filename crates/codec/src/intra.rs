//! Still-image (intra / JPEG-like) codec.
//!
//! RGB → YCbCr with 4:2:0 chroma subsampling, 8×8 block DCT, quality-scaled
//! quantization, and run-length + Exp-Golomb entropy coding. This is both the
//! standalone image codec (the paper's "JPEG" layout) and the I-frame coder
//! of the [`crate::video`] module.

use crate::bitstream::{BitReader, BitWriter};
use crate::dct::{self, BLOCK};
use crate::entropy::{BlockDecoder, BlockEncoder};
use crate::error::CodecError;
use crate::image::{Image, Plane};
use crate::quant::{dequantize, quantize, Quality, QuantTables};

/// Magic number prefixing standalone encoded images.
pub const IMAGE_MAGIC: u32 = 0x444C_4931; // "DLI1"

/// Encode a single plane into the writer: all blocks, row-major block order.
///
/// `shift` is subtracted from every sample before the transform (128 for the
/// level shift of intra planes, 0 for residual planes that are already
/// centred on zero).
pub(crate) fn encode_plane(
    plane: &Plane,
    table: &[u16; BLOCK * BLOCK],
    shift: f32,
    w: &mut BitWriter,
) {
    let bw = (plane.width as usize).div_ceil(BLOCK);
    let bh = (plane.height as usize).div_ceil(BLOCK);
    let mut enc = BlockEncoder::new();
    let mut block = [0f32; BLOCK * BLOCK];
    let mut coef = [0f32; BLOCK * BLOCK];
    for by in 0..bh {
        for bx in 0..bw {
            for y in 0..BLOCK {
                for x in 0..BLOCK {
                    block[y * BLOCK + x] =
                        plane.get_clamped((bx * BLOCK + x) as i64, (by * BLOCK + y) as i64) - shift;
                }
            }
            dct::forward(&block, &mut coef);
            let levels = quantize(&coef, table);
            enc.encode(&levels, w);
        }
    }
}

/// Decode a plane written by [`encode_plane`].
pub(crate) fn decode_plane(
    width: u32,
    height: u32,
    table: &[u16; BLOCK * BLOCK],
    shift: f32,
    r: &mut BitReader<'_>,
) -> crate::Result<Plane> {
    let bw = (width as usize).div_ceil(BLOCK);
    let bh = (height as usize).div_ceil(BLOCK);
    let mut plane = Plane::new(width, height);
    let mut dec = BlockDecoder::new();
    let mut pixels = [0f32; BLOCK * BLOCK];
    for by in 0..bh {
        for bx in 0..bw {
            let levels = dec.decode(r)?;
            let coef = dequantize(&levels, table);
            dct::inverse(&coef, &mut pixels);
            for y in 0..BLOCK {
                for x in 0..BLOCK {
                    plane.set(
                        (bx * BLOCK + x) as u32,
                        (by * BLOCK + y) as u32,
                        pixels[y * BLOCK + x] + shift,
                    );
                }
            }
        }
    }
    Ok(plane)
}

/// Encode the three YCbCr planes of an image (4:2:0) into a writer.
///
/// Shared between the standalone image format and video I-frames.
pub(crate) fn encode_planes(img: &Image, tables: &QuantTables, w: &mut BitWriter) {
    let [y, cb, cr] = img.to_ycbcr();
    let cb = cb.downsample2();
    let cr = cr.downsample2();
    encode_plane(&y, &tables.luma, 128.0, w);
    encode_plane(&cb, &tables.chroma, 128.0, w);
    encode_plane(&cr, &tables.chroma, 128.0, w);
}

/// Decode planes written by [`encode_planes`] back into an RGB image.
pub(crate) fn decode_planes(
    width: u32,
    height: u32,
    tables: &QuantTables,
    r: &mut BitReader<'_>,
) -> crate::Result<Image> {
    let cw = width.div_ceil(2);
    let ch = height.div_ceil(2);
    let y = decode_plane(width, height, &tables.luma, 128.0, r)?;
    let cb = decode_plane(cw, ch, &tables.chroma, 128.0, r)?.upsample2(width, height);
    let cr = decode_plane(cw, ch, &tables.chroma, 128.0, r)?.upsample2(width, height);
    Ok(Image::from_ycbcr(&[y, cb, cr]))
}

/// Encode an image to a standalone byte buffer (magic + header + bitstream).
pub fn encode_image(img: &Image, quality: Quality) -> Vec<u8> {
    let tables = QuantTables::for_quality(quality);
    let mut w = BitWriter::new();
    w.put_bits(IMAGE_MAGIC, 32);
    w.put_bits(img.width(), 16);
    w.put_bits(img.height(), 16);
    w.put_bits(quality.factor() as u32, 8);
    encode_planes(img, &tables, &mut w);
    w.finish()
}

/// Decode a buffer produced by [`encode_image`].
pub fn decode_image(bytes: &[u8]) -> crate::Result<Image> {
    let mut r = BitReader::new(bytes);
    let magic = r.get_bits(32)?;
    if magic != IMAGE_MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let width = r.get_bits(16)?;
    let height = r.get_bits(16)?;
    if width == 0 || height == 0 {
        return Err(CodecError::InvalidHeader("zero image dimension".into()));
    }
    let qf = r.get_bits(8)? as u8;
    let tables = QuantTables::for_quality(Quality::Custom(qf));
    decode_planes(width, height, &tables, &mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::psnr;

    fn gradient_image(w: u32, h: u32) -> Image {
        let mut img = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(
                    x,
                    y,
                    [(x * 255 / w.max(1)) as u8, (y * 255 / h.max(1)) as u8, 120],
                );
            }
        }
        img
    }

    #[test]
    fn solid_image_is_tiny_and_exactish() {
        let img = Image::solid(64, 64, [200, 30, 90]);
        let bytes = encode_image(&img, Quality::High);
        assert!(
            bytes.len() < img.byte_size() / 20,
            "solid image should compress > 20x"
        );
        let back = decode_image(&bytes).unwrap();
        assert!(psnr(&img, &back) > 35.0);
    }

    #[test]
    fn gradient_roundtrip_quality_ordering() {
        let img = gradient_image(96, 64);
        let hi = decode_image(&encode_image(&img, Quality::High)).unwrap();
        let lo = decode_image(&encode_image(&img, Quality::Low)).unwrap();
        let p_hi = psnr(&img, &hi);
        let p_lo = psnr(&img, &lo);
        assert!(
            p_hi > p_lo,
            "high quality must beat low quality ({p_hi} vs {p_lo})"
        );
        assert!(p_hi > 30.0, "high quality PSNR too low: {p_hi}");
    }

    #[test]
    fn lower_quality_smaller_output() {
        let img = gradient_image(96, 64);
        let hi = encode_image(&img, Quality::High);
        let lo = encode_image(&img, Quality::Low);
        assert!(lo.len() < hi.len());
    }

    #[test]
    fn non_multiple_of_block_dimensions() {
        let img = gradient_image(37, 23);
        let back = decode_image(&encode_image(&img, Quality::High)).unwrap();
        assert_eq!(back.width(), 37);
        assert_eq!(back.height(), 23);
        assert!(psnr(&img, &back) > 28.0);
    }

    #[test]
    fn bad_magic_rejected() {
        let img = Image::solid(16, 16, [1, 2, 3]);
        let mut bytes = encode_image(&img, Quality::Medium);
        bytes[0] ^= 0xFF;
        assert!(matches!(decode_image(&bytes), Err(CodecError::BadMagic(_))));
    }

    #[test]
    fn truncated_stream_rejected() {
        let img = gradient_image(32, 32);
        let bytes = encode_image(&img, Quality::Medium);
        let res = decode_image(&bytes[..bytes.len() / 2]);
        assert!(res.is_err());
    }

    #[test]
    fn one_pixel_image() {
        let img = Image::solid(1, 1, [77, 66, 55]);
        let back = decode_image(&encode_image(&img, Quality::High)).unwrap();
        assert_eq!(back.width(), 1);
        assert_eq!(back.height(), 1);
        let px = back.get(0, 0);
        for (got, want) in px.iter().zip(img.get(0, 0)) {
            assert!((*got as i32 - want as i32).abs() < 30);
        }
    }
}
