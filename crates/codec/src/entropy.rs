//! Zigzag scan and run-length coefficient coding.
//!
//! Quantized 8×8 blocks are serialized as: signed Exp-Golomb DC delta
//! (differential against the previous block of the same plane), then
//! `(run-of-zeros, level)` pairs over the zigzagged AC coefficients, closed
//! by an end-of-block marker.

use crate::bitstream::{BitReader, BitWriter};
use crate::dct::BLOCK;
use crate::error::CodecError;

/// Zigzag scan order for an 8×8 block (JPEG order).
pub const ZIGZAG: [usize; BLOCK * BLOCK] = [
    0, 1, 8, 16, 9, 2, 3, 10, //
    17, 24, 32, 25, 18, 11, 4, 5, //
    12, 19, 26, 33, 40, 48, 41, 34, //
    27, 20, 13, 6, 7, 14, 21, 28, //
    35, 42, 49, 56, 57, 50, 43, 36, //
    29, 22, 15, 23, 30, 37, 44, 51, //
    58, 59, 52, 45, 38, 31, 39, 46, //
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// Stateful block coder: tracks the DC predictor for differential coding.
#[derive(Debug, Default)]
pub struct BlockEncoder {
    dc_pred: i32,
}

impl BlockEncoder {
    /// Create a coder with a zero DC predictor (start of plane).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset the DC predictor (slice/plane boundary).
    pub fn reset(&mut self) {
        self.dc_pred = 0;
    }

    /// Encode one quantized block into the bit writer.
    pub fn encode(&mut self, levels: &[i32; BLOCK * BLOCK], w: &mut BitWriter) {
        // DC: differential, signed Exp-Golomb.
        let dc = levels[0];
        w.put_se(dc - self.dc_pred);
        self.dc_pred = dc;

        // AC: (run, level) pairs in zigzag order. run is ue, level is se != 0.
        let mut run = 0u32;
        for &zz in ZIGZAG.iter().skip(1) {
            let v = levels[zz];
            if v == 0 {
                run += 1;
            } else {
                w.put_ue(run);
                w.put_se(v);
                run = 0;
            }
        }
        // End-of-block: run == 63 can never follow a coefficient, so a
        // sentinel run of 63 paired with level 0 terminates the block.
        w.put_ue(63);
        w.put_se(0);
    }
}

/// Stateful block decoder mirroring [`BlockEncoder`].
#[derive(Debug, Default)]
pub struct BlockDecoder {
    dc_pred: i32,
}

impl BlockDecoder {
    /// Create a decoder with a zero DC predictor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset the DC predictor (slice/plane boundary).
    pub fn reset(&mut self) {
        self.dc_pred = 0;
    }

    /// Decode one block from the bit reader.
    pub fn decode(&mut self, r: &mut BitReader<'_>) -> crate::Result<[i32; BLOCK * BLOCK]> {
        let mut levels = [0i32; BLOCK * BLOCK];
        let delta = r.get_se()?;
        self.dc_pred += delta;
        levels[0] = self.dc_pred;

        let mut pos = 1usize; // position in zigzag order
        loop {
            let run = r.get_ue()? as usize;
            let level = r.get_se()?;
            if run == 63 && level == 0 {
                break; // end of block
            }
            pos += run;
            if pos >= BLOCK * BLOCK {
                return Err(CodecError::CorruptStream(format!(
                    "AC run overflows block: pos {pos}"
                )));
            }
            if level == 0 {
                return Err(CodecError::CorruptStream("zero AC level".into()));
            }
            levels[ZIGZAG[pos]] = level;
            pos += 1;
        }
        Ok(levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &i in &ZIGZAG {
            assert!(!seen[i], "duplicate zigzag index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zigzag_first_entries() {
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
    }

    fn roundtrip_blocks(blocks: &[[i32; 64]]) {
        let mut w = BitWriter::new();
        let mut enc = BlockEncoder::new();
        for b in blocks {
            enc.encode(b, &mut w);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut dec = BlockDecoder::new();
        for b in blocks {
            let d = dec.decode(&mut r).unwrap();
            assert_eq!(&d, b);
        }
    }

    #[test]
    fn empty_block_roundtrip() {
        roundtrip_blocks(&[[0i32; 64]]);
    }

    #[test]
    fn dc_only_sequence_roundtrip() {
        let mut blocks = vec![];
        for dc in [5i32, 7, 3, -10, 0, 100] {
            let mut b = [0i32; 64];
            b[0] = dc;
            blocks.push(b);
        }
        roundtrip_blocks(&blocks);
    }

    #[test]
    fn dense_block_roundtrip() {
        let mut b = [0i32; 64];
        for (i, v) in b.iter_mut().enumerate() {
            *v = (i as i32 % 7) - 3; // includes zeros interleaved with values
        }
        roundtrip_blocks(&[b]);
    }

    #[test]
    fn trailing_coefficient_roundtrip() {
        // Nonzero value at the very last zigzag position.
        let mut b = [0i32; 64];
        b[ZIGZAG[63]] = -4;
        b[0] = 9;
        roundtrip_blocks(&[b]);
    }

    #[test]
    fn corrupt_stream_detected() {
        // A stream of all 1-bits decodes ue=0 forever -> run 0 level 0 -> error.
        let bytes = [0xFFu8; 4];
        let mut r = BitReader::new(&bytes);
        let mut dec = BlockDecoder::new();
        assert!(dec.decode(&mut r).is_err());
    }

    #[test]
    fn dc_predictor_reset() {
        let mut b1 = [0i32; 64];
        b1[0] = 50;
        let mut w = BitWriter::new();
        let mut enc = BlockEncoder::new();
        enc.encode(&b1, &mut w);
        enc.reset();
        enc.encode(&b1, &mut w); // encodes delta 50 again after reset
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut dec = BlockDecoder::new();
        assert_eq!(dec.decode(&mut r).unwrap()[0], 50);
        dec.reset();
        assert_eq!(dec.decode(&mut r).unwrap()[0], 50);
    }
}
