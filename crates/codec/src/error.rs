//! Error type for codec operations.

use std::fmt;

/// Errors produced while encoding or decoding images and video.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The bitstream ended before a complete symbol could be decoded.
    UnexpectedEof,
    /// A container or frame header carried an invalid magic number.
    BadMagic(u32),
    /// Header fields are internally inconsistent (e.g. zero dimensions).
    InvalidHeader(String),
    /// A frame had different dimensions than the stream header declared.
    DimensionMismatch {
        /// Width/height the stream was configured with.
        expected: (u32, u32),
        /// Width/height of the offending frame.
        actual: (u32, u32),
    },
    /// A decoded value fell outside its legal range.
    CorruptStream(String),
    /// The requested frame index does not exist in the stream.
    FrameOutOfRange {
        /// Index that was requested.
        index: usize,
        /// Number of frames in the stream.
        len: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of bitstream"),
            CodecError::BadMagic(m) => write!(f, "bad container magic: {m:#010x}"),
            CodecError::InvalidHeader(msg) => write!(f, "invalid header: {msg}"),
            CodecError::DimensionMismatch { expected, actual } => write!(
                f,
                "frame dimensions {}x{} do not match stream {}x{}",
                actual.0, actual.1, expected.0, expected.1
            ),
            CodecError::CorruptStream(msg) => write!(f, "corrupt stream: {msg}"),
            CodecError::FrameOutOfRange { index, len } => {
                write!(
                    f,
                    "frame index {index} out of range for stream of {len} frames"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CodecError::DimensionMismatch {
            expected: (64, 48),
            actual: (32, 32),
        };
        let s = e.to_string();
        assert!(s.contains("32x32"));
        assert!(s.contains("64x48"));
        assert!(CodecError::UnexpectedEof
            .to_string()
            .contains("end of bitstream"));
        assert!(CodecError::BadMagic(0xdead)
            .to_string()
            .contains("0x0000dead"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CodecError::UnexpectedEof);
    }
}
