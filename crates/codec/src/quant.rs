//! Quality-scaled quantization matrices.
//!
//! Follows the libjpeg convention: a base luminance/chrominance table is
//! scaled by a factor derived from a quality setting in `[1, 100]`. The
//! paper's experiments (Fig. 2) sweep three presets — High, Medium, Low —
//! which map to qualities 90 / 50 / 10 here.

use crate::dct::BLOCK;

/// ITU-T T.81 Annex K luminance quantization table.
pub const BASE_LUMA: [u16; BLOCK * BLOCK] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// ITU-T T.81 Annex K chrominance quantization table.
pub const BASE_CHROMA: [u16; BLOCK * BLOCK] = [
    17, 18, 24, 47, 99, 99, 99, 99, //
    18, 21, 26, 66, 99, 99, 99, 99, //
    24, 26, 56, 99, 99, 99, 99, 99, //
    47, 66, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99,
];

/// Lossy-encoding quality presets used across the DeepLens benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Quality {
    /// Aggressive compression; visible artifacts, measurable accuracy loss.
    Low,
    /// Balanced preset.
    Medium,
    /// Near-transparent preset; negligible downstream accuracy impact.
    #[default]
    High,
    /// Arbitrary quality in `[1, 100]`.
    Custom(u8),
}

impl Quality {
    /// The JPEG-style quality factor in `[1, 100]`.
    pub fn factor(self) -> u8 {
        match self {
            Quality::Low => 10,
            Quality::Medium => 50,
            Quality::High => 90,
            Quality::Custom(q) => q.clamp(1, 100),
        }
    }

    /// Human-readable label used by the benchmark harnesses.
    pub fn label(self) -> String {
        match self {
            Quality::Low => "Low".to_string(),
            Quality::Medium => "Medium".to_string(),
            Quality::High => "High".to_string(),
            Quality::Custom(q) => format!("Q{q}"),
        }
    }
}

/// A pair of quantization tables scaled to a quality factor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantTables {
    /// Scaled luminance divisors.
    pub luma: [u16; BLOCK * BLOCK],
    /// Scaled chrominance divisors.
    pub chroma: [u16; BLOCK * BLOCK],
}

impl QuantTables {
    /// Scale the Annex-K base tables to the given quality preset.
    pub fn for_quality(q: Quality) -> Self {
        let qf = q.factor() as u32;
        // libjpeg scaling: quality < 50 => 5000/q, else 200 - 2q.
        let scale = if qf < 50 { 5000 / qf } else { 200 - 2 * qf };
        let scale_one = |base: u16| -> u16 {
            let v = (base as u32 * scale + 50) / 100;
            v.clamp(1, 4096) as u16
        };
        let mut luma = [0u16; BLOCK * BLOCK];
        let mut chroma = [0u16; BLOCK * BLOCK];
        for i in 0..BLOCK * BLOCK {
            luma[i] = scale_one(BASE_LUMA[i]);
            chroma[i] = scale_one(BASE_CHROMA[i]);
        }
        QuantTables { luma, chroma }
    }
}

/// Quantize a coefficient block in place using the given divisors.
pub fn quantize(coef: &[f32; BLOCK * BLOCK], table: &[u16; BLOCK * BLOCK]) -> [i32; BLOCK * BLOCK] {
    let mut out = [0i32; BLOCK * BLOCK];
    for i in 0..BLOCK * BLOCK {
        out[i] = (coef[i] / table[i] as f32).round() as i32;
    }
    out
}

/// Reconstruct coefficients from quantized levels.
pub fn dequantize(
    levels: &[i32; BLOCK * BLOCK],
    table: &[u16; BLOCK * BLOCK],
) -> [f32; BLOCK * BLOCK] {
    let mut out = [0f32; BLOCK * BLOCK];
    for i in 0..BLOCK * BLOCK {
        out[i] = levels[i] as f32 * table[i] as f32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_ordering_of_divisors() {
        let hi = QuantTables::for_quality(Quality::High);
        let med = QuantTables::for_quality(Quality::Medium);
        let lo = QuantTables::for_quality(Quality::Low);
        // Higher quality must quantize no more aggressively anywhere.
        for i in 0..64 {
            assert!(hi.luma[i] <= med.luma[i]);
            assert!(med.luma[i] <= lo.luma[i]);
        }
    }

    #[test]
    fn medium_matches_base_tables() {
        // Quality 50 should reproduce the Annex-K tables exactly.
        let med = QuantTables::for_quality(Quality::Medium);
        assert_eq!(med.luma, BASE_LUMA);
        assert_eq!(med.chroma, BASE_CHROMA);
    }

    #[test]
    fn custom_quality_clamps() {
        assert_eq!(Quality::Custom(0).factor(), 1);
        assert_eq!(Quality::Custom(255).factor(), 100);
        assert_eq!(Quality::Custom(42).factor(), 42);
    }

    #[test]
    fn quantize_dequantize_bounds_error() {
        let t = QuantTables::for_quality(Quality::High);
        let mut coef = [0f32; 64];
        for (i, c) in coef.iter_mut().enumerate() {
            *c = (i as f32 - 32.0) * 7.3;
        }
        let q = quantize(&coef, &t.luma);
        let d = dequantize(&q, &t.luma);
        for i in 0..64 {
            // Error bounded by half the quantizer step.
            assert!((coef[i] - d[i]).abs() <= t.luma[i] as f32 / 2.0 + 1e-3);
        }
    }

    #[test]
    fn divisors_never_zero() {
        for q in 1..=100u8 {
            let t = QuantTables::for_quality(Quality::Custom(q));
            assert!(t.luma.iter().all(|&v| v >= 1));
            assert!(t.chroma.iter().all(|&v| v >= 1));
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Quality::High.label(), "High");
        assert_eq!(Quality::Custom(33).label(), "Q33");
    }
}
