//! Block motion estimation and compensation for inter (P) frames.
//!
//! The inter coder divides the luma plane into 16×16 macroblocks, finds a
//! motion vector against the reference frame with a three-step search, and
//! codes the motion-compensated residual. Chroma reuses the luma vectors at
//! half resolution (4:2:0).

use crate::image::Plane;

/// Macroblock edge length on the luma plane.
pub const MB: usize = 16;

/// Maximum search displacement in each axis (three-step search start radius).
pub const SEARCH_RADIUS: i32 = 8;

/// A per-macroblock motion vector in luma pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MotionVector {
    /// Horizontal displacement (positive = reference block lies right).
    pub dx: i32,
    /// Vertical displacement.
    pub dy: i32,
}

/// Sum of absolute differences between the macroblock at `(bx, by)` in
/// `cur` and the displaced block in `reference`.
fn sad(cur: &Plane, reference: &Plane, bx: usize, by: usize, dx: i32, dy: i32) -> f32 {
    let mut acc = 0f32;
    let x0 = (bx * MB) as i64;
    let y0 = (by * MB) as i64;
    for y in 0..MB as i64 {
        for x in 0..MB as i64 {
            let c = cur.get_clamped(x0 + x, y0 + y);
            let r = reference.get_clamped(x0 + x + dx as i64, y0 + y + dy as i64);
            acc += (c - r).abs();
        }
    }
    acc
}

/// Three-step search for the best motion vector of macroblock `(bx, by)`.
///
/// Starts with step [`SEARCH_RADIUS`], probing the 8 neighbours plus the
/// center, halving the step until 1. Complexity is logarithmic in the search
/// radius versus quadratic for full search, with near-identical quality on
/// smooth motion — matching how production encoders trade off here.
pub fn estimate(cur: &Plane, reference: &Plane, bx: usize, by: usize) -> MotionVector {
    let mut best = MotionVector::default();
    let mut best_sad = sad(cur, reference, bx, by, 0, 0);
    let mut step = SEARCH_RADIUS;
    while step >= 1 {
        let mut improved = true;
        while improved {
            improved = false;
            for (ox, oy) in [
                (-1, -1),
                (0, -1),
                (1, -1),
                (-1, 0),
                (1, 0),
                (-1, 1),
                (0, 1),
                (1, 1),
            ] {
                let dx = best.dx + ox * step;
                let dy = best.dy + oy * step;
                if dx.abs() > 2 * SEARCH_RADIUS || dy.abs() > 2 * SEARCH_RADIUS {
                    continue;
                }
                let s = sad(cur, reference, bx, by, dx, dy);
                if s < best_sad {
                    best_sad = s;
                    best = MotionVector { dx, dy };
                    improved = true;
                }
            }
        }
        step /= 2;
    }
    best
}

/// Build the motion-compensated prediction of `cur`'s geometry from
/// `reference`, given one vector per macroblock (row-major).
///
/// `scale` divides the vectors (2 for half-resolution chroma planes).
pub fn compensate(
    reference: &Plane,
    width: u32,
    height: u32,
    vectors: &[MotionVector],
    mb_cols: usize,
    scale: i32,
) -> Plane {
    let mut out = Plane::new(width, height);
    let mb = MB / scale as usize;
    for y in 0..height as usize {
        for x in 0..width as usize {
            let mb_x = (x / mb).min(mb_cols - 1);
            let mb_y = y / mb;
            let idx = (mb_y * mb_cols + mb_x).min(vectors.len().saturating_sub(1));
            let v = vectors.get(idx).copied().unwrap_or_default();
            let sx = x as i64 + (v.dx / scale) as i64;
            let sy = y as i64 + (v.dy / scale) as i64;
            out.set(x as u32, y as u32, reference.get_clamped(sx, sy));
        }
    }
    out
}

/// Subtract prediction from current plane, producing the residual.
pub fn residual(cur: &Plane, pred: &Plane) -> Plane {
    debug_assert_eq!((cur.width, cur.height), (pred.width, pred.height));
    let mut out = Plane::new(cur.width, cur.height);
    for i in 0..cur.data.len() {
        out.data[i] = cur.data[i] - pred.data[i];
    }
    out
}

/// Add a decoded residual back onto the prediction.
pub fn reconstruct(pred: &Plane, res: &Plane) -> Plane {
    debug_assert_eq!((pred.width, pred.height), (res.width, res.height));
    let mut out = Plane::new(pred.width, pred.height);
    for i in 0..pred.data.len() {
        out.data[i] = (pred.data[i] + res.data[i]).clamp(0.0, 255.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plane with a bright square at (x0, y0).
    fn square_plane(w: u32, h: u32, x0: u32, y0: u32) -> Plane {
        let mut p = Plane::new(w, h);
        for y in 0..8 {
            for x in 0..8 {
                p.set(x0 + x, y0 + y, 250.0);
            }
        }
        p
    }

    #[test]
    fn zero_motion_for_identical_frames() {
        let p = square_plane(32, 32, 8, 8);
        let v = estimate(&p, &p, 0, 0);
        assert_eq!(v, MotionVector { dx: 0, dy: 0 });
    }

    #[test]
    fn detects_translation() {
        // Object moved +4,+2 between reference and current frame: the block in
        // the current frame is found 4 left / 2 up in the reference.
        let reference = square_plane(48, 48, 8, 8);
        let cur = square_plane(48, 48, 12, 10);
        let v = estimate(&cur, &reference, 0, 0);
        assert_eq!((v.dx, v.dy), (-4, -2));
    }

    #[test]
    fn compensation_reconstructs_translation() {
        let reference = square_plane(32, 32, 8, 8);
        let cur = square_plane(32, 32, 10, 8);
        let mb_cols = 2;
        let mut vectors = vec![MotionVector::default(); 4];
        for by in 0..2 {
            for bx in 0..2 {
                vectors[by * mb_cols + bx] = estimate(&cur, &reference, bx, by);
            }
        }
        let pred = compensate(&reference, 32, 32, &vectors, mb_cols, 1);
        let res = residual(&cur, &pred);
        let energy: f32 = res.data.iter().map(|v| v * v).sum();
        assert!(
            energy < 1.0,
            "residual energy after perfect compensation: {energy}"
        );
    }

    #[test]
    fn residual_reconstruct_inverse() {
        let a = square_plane(16, 16, 2, 2);
        let b = square_plane(16, 16, 6, 6);
        let r = residual(&a, &b);
        let back = reconstruct(&b, &r);
        for (x, y) in a.data.iter().zip(back.data.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn compensate_clamps_at_borders() {
        let reference = square_plane(16, 16, 0, 0);
        let vectors = vec![MotionVector { dx: -20, dy: -20 }];
        // Should not panic; samples clamp to the border.
        let pred = compensate(&reference, 16, 16, &vectors, 1, 1);
        assert_eq!(pred.data.len(), 256);
    }
}
