//! Bit-level I/O and Exp-Golomb universal codes.
//!
//! The entropy layer writes MSB-first into a byte vector. Exp-Golomb codes
//! are the variable-length integer codes used by H.264 for headers, motion
//! vectors, and (in our simplified codec) coefficient levels.

use crate::error::CodecError;

/// MSB-first bit writer over a growable byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits currently accumulated in `cur` (0..8).
    nbits: u8,
    cur: u8,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        self.cur = (self.cur << 1) | bit as u8;
        self.nbits += 1;
        if self.nbits == 8 {
            self.buf.push(self.cur);
            self.cur = 0;
            self.nbits = 0;
        }
    }

    /// Append the low `n` bits of `v`, MSB first. `n` must be ≤ 32.
    #[inline]
    pub fn put_bits(&mut self, v: u32, n: u8) {
        debug_assert!(n <= 32);
        for i in (0..n).rev() {
            self.put_bit((v >> i) & 1 == 1);
        }
    }

    /// Unsigned Exp-Golomb code: `v` is encoded as `leading_zeros(v+1)` zero
    /// bits followed by the binary representation of `v + 1`.
    pub fn put_ue(&mut self, v: u32) {
        let x = v as u64 + 1;
        let nbits = 64 - x.leading_zeros() as u8; // length of x in bits
        for _ in 0..nbits - 1 {
            self.put_bit(false);
        }
        for i in (0..nbits).rev() {
            self.put_bit((x >> i) & 1 == 1);
        }
    }

    /// Signed Exp-Golomb code (zigzag mapping: 0, 1, -1, 2, -2, ...).
    pub fn put_se(&mut self, v: i32) {
        let mapped = if v <= 0 {
            (-(v as i64) * 2) as u32
        } else {
            (v as u32) * 2 - 1
        };
        self.put_ue(mapped);
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Flush the final partial byte (zero-padded) and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.cur <<= 8 - self.nbits;
            self.buf.push(self.cur);
        }
        self.buf
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Next bit position.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Read one bit.
    #[inline]
    pub fn get_bit(&mut self) -> crate::Result<bool> {
        let byte = self.pos / 8;
        if byte >= self.buf.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let bit = 7 - (self.pos % 8);
        self.pos += 1;
        Ok((self.buf[byte] >> bit) & 1 == 1)
    }

    /// Read `n` bits MSB-first into the low bits of the result.
    #[inline]
    pub fn get_bits(&mut self, n: u8) -> crate::Result<u32> {
        debug_assert!(n <= 32);
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | self.get_bit()? as u32;
        }
        Ok(v)
    }

    /// Decode an unsigned Exp-Golomb code.
    pub fn get_ue(&mut self) -> crate::Result<u32> {
        let mut zeros = 0u8;
        while !self.get_bit()? {
            zeros += 1;
            if zeros > 32 {
                return Err(CodecError::CorruptStream(
                    "exp-golomb prefix too long".into(),
                ));
            }
        }
        let rest = self.get_bits(zeros)?;
        let x = (1u64 << zeros) | rest as u64;
        Ok((x - 1) as u32)
    }

    /// Decode a signed Exp-Golomb code.
    pub fn get_se(&mut self) -> crate::Result<i32> {
        let v = self.get_ue()? as i64;
        Ok(if v % 2 == 0 {
            -(v / 2) as i32
        } else {
            ((v + 1) / 2) as i32
        })
    }

    /// Current read position in bits.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b1011, 4);
        w.put_bits(0xABCD, 16);
        w.put_bit(true);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(4).unwrap(), 0b1011);
        assert_eq!(r.get_bits(16).unwrap(), 0xABCD);
        assert!(r.get_bit().unwrap());
    }

    #[test]
    fn ue_small_values() {
        // Classic table: 0->1, 1->010, 2->011, 3->00100 ...
        let mut w = BitWriter::new();
        for v in 0..10 {
            w.put_ue(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for v in 0..10 {
            assert_eq!(r.get_ue().unwrap(), v);
        }
    }

    #[test]
    fn ue_large_values() {
        let vals = [255u32, 1024, 65535, 1 << 20, u32::MAX / 4];
        let mut w = BitWriter::new();
        for &v in &vals {
            w.put_ue(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &vals {
            assert_eq!(r.get_ue().unwrap(), v);
        }
    }

    #[test]
    fn se_roundtrip() {
        let vals = [0i32, 1, -1, 2, -2, 100, -100, 30000, -30000];
        let mut w = BitWriter::new();
        for &v in &vals {
            w.put_se(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &vals {
            assert_eq!(r.get_se().unwrap(), v);
        }
    }

    #[test]
    fn eof_detection() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.get_bit(), Err(CodecError::UnexpectedEof));
        let mut r2 = BitReader::new(&[0xFF]);
        assert_eq!(r2.get_bits(8).unwrap(), 0xFF);
        assert!(r2.get_bit().is_err());
    }

    #[test]
    fn bit_len_tracks_writes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.put_bits(0, 5);
        assert_eq!(w.bit_len(), 5);
        w.put_bits(0, 5);
        assert_eq!(w.bit_len(), 10);
    }
}
