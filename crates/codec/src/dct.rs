//! 8×8 discrete cosine transform used by the intra and inter coders.
//!
//! Implemented as a separable transform with a precomputed cosine basis,
//! which is simple, exactly invertible to within floating-point error, and
//! fast enough for the simulated workloads.

/// Transform block edge length in samples.
pub const BLOCK: usize = 8;

/// Precomputed `cos((2x+1) u pi / 16)` basis, indexed `[u][x]`.
fn basis() -> &'static [[f32; BLOCK]; BLOCK] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[[f32; BLOCK]; BLOCK]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [[0f32; BLOCK]; BLOCK];
        for (u, row) in t.iter_mut().enumerate() {
            for (x, v) in row.iter_mut().enumerate() {
                *v = ((2 * x + 1) as f32 * u as f32 * std::f32::consts::PI / 16.0).cos();
            }
        }
        t
    })
}

#[inline]
fn alpha(u: usize) -> f32 {
    if u == 0 {
        1.0 / std::f32::consts::SQRT_2
    } else {
        1.0
    }
}

/// Forward 8×8 DCT-II of a row-major block (in place into `out`).
pub fn forward(block: &[f32; BLOCK * BLOCK], out: &mut [f32; BLOCK * BLOCK]) {
    let b = basis();
    // Row pass.
    let mut tmp = [0f32; BLOCK * BLOCK];
    for y in 0..BLOCK {
        for u in 0..BLOCK {
            let mut acc = 0.0;
            for x in 0..BLOCK {
                acc += block[y * BLOCK + x] * b[u][x];
            }
            tmp[y * BLOCK + u] = acc;
        }
    }
    // Column pass.
    for v in 0..BLOCK {
        for u in 0..BLOCK {
            let mut acc = 0.0;
            for y in 0..BLOCK {
                acc += tmp[y * BLOCK + u] * b[v][y];
            }
            out[v * BLOCK + u] = 0.25 * alpha(u) * alpha(v) * acc;
        }
    }
}

/// Inverse 8×8 DCT-III of a row-major coefficient block (into `out`).
pub fn inverse(coef: &[f32; BLOCK * BLOCK], out: &mut [f32; BLOCK * BLOCK]) {
    let b = basis();
    // Column pass.
    let mut tmp = [0f32; BLOCK * BLOCK];
    for y in 0..BLOCK {
        for u in 0..BLOCK {
            let mut acc = 0.0;
            for v in 0..BLOCK {
                acc += alpha(v) * coef[v * BLOCK + u] * b[v][y];
            }
            tmp[y * BLOCK + u] = acc;
        }
    }
    // Row pass.
    for y in 0..BLOCK {
        for x in 0..BLOCK {
            let mut acc = 0.0;
            for u in 0..BLOCK {
                acc += alpha(u) * tmp[y * BLOCK + u] * b[u][x];
            }
            out[y * BLOCK + x] = 0.25 * acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(block: [f32; 64]) -> [f32; 64] {
        let mut coef = [0f32; 64];
        let mut back = [0f32; 64];
        forward(&block, &mut coef);
        inverse(&coef, &mut back);
        back
    }

    #[test]
    fn dc_only_for_flat_block() {
        let block = [100.0f32; 64];
        let mut coef = [0f32; 64];
        forward(&block, &mut coef);
        assert!(
            (coef[0] - 800.0).abs() < 1e-2,
            "DC of flat block should be 8*value"
        );
        for (i, c) in coef.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-3, "AC coefficient {i} should vanish, got {c}");
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let mut block = [0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 37) % 256) as f32 - 128.0;
        }
        let back = roundtrip(block);
        for (a, b) in block.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-2, "roundtrip drift {a} vs {b}");
        }
    }

    #[test]
    fn linearity() {
        let mut b1 = [0f32; 64];
        let mut b2 = [0f32; 64];
        for i in 0..64 {
            b1[i] = (i as f32).sin() * 50.0;
            b2[i] = (i as f32 * 0.7).cos() * 30.0;
        }
        let mut c1 = [0f32; 64];
        let mut c2 = [0f32; 64];
        let mut csum = [0f32; 64];
        forward(&b1, &mut c1);
        forward(&b2, &mut c2);
        let mut sum = [0f32; 64];
        for i in 0..64 {
            sum[i] = b1[i] + b2[i];
        }
        forward(&sum, &mut csum);
        for i in 0..64 {
            assert!((csum[i] - (c1[i] + c2[i])).abs() < 1e-2);
        }
    }

    #[test]
    fn energy_preservation_parseval() {
        let mut block = [0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i as f32 * 1.3).sin()) * 100.0;
        }
        let mut coef = [0f32; 64];
        forward(&block, &mut coef);
        let es: f32 = block.iter().map(|v| v * v).sum();
        let ec: f32 = coef.iter().map(|v| v * v).sum();
        assert!(
            (es - ec).abs() / es < 1e-4,
            "Parseval violated: {es} vs {ec}"
        );
    }
}
