//! # deeplens-codec
//!
//! Image and video compression substrate for DeepLens.
//!
//! The DeepLens paper (CIDR 2019) evaluates three physical layouts for video:
//! raw frames, a fully-encoded sequential stream (H.264), and a hybrid
//! "segmented" layout of independently-encoded clips. This crate provides the
//! codec those layouts are built on, implemented from scratch:
//!
//! * [`Image`] — dense interleaved RGB raster with plane extraction and
//!   (4:2:0) chroma subsampling support.
//! * [`dct`] — 8×8 forward/inverse discrete cosine transform.
//! * [`quant`] — JPEG-style quality-scaled quantization matrices.
//! * [`bitstream`] — bit-level I/O with Exp-Golomb universal codes.
//! * [`entropy`] — zigzag scan + run-length coefficient coding.
//! * [`intra`] — still-image (I-frame / JPEG-like) codec.
//! * [`motion`] — block motion estimation and compensation.
//! * [`video`] — GOP-structured video encoder/decoder with sequential
//!   decode semantics (no random access within a GOP) and clip segmentation.
//! * [`metrics`] — MSE / PSNR for accuracy studies (paper Fig. 2).
//!
//! The codec intentionally mirrors the properties the paper's experiments
//! depend on: large compression ratios on temporally-redundant video,
//! strictly sequential decoding of inter-coded streams, and lossiness that
//! grows as the quality preset drops.
//!
//! ```
//! use deeplens_codec::{Image, video::{VideoEncoder, VideoDecoder, VideoConfig}, Quality};
//!
//! // Encode a tiny synthetic 3-frame video and decode it back.
//! let frames: Vec<Image> = (0..3)
//!     .map(|t| Image::solid(32, 32, [10 * t as u8, 128, 200]))
//!     .collect();
//! let cfg = VideoConfig { quality: Quality::High, gop: 8, ..Default::default() };
//! let mut enc = VideoEncoder::new(32, 32, cfg);
//! for f in &frames { enc.push(f).unwrap(); }
//! let stream = enc.finish();
//! let decoded: Vec<Image> = VideoDecoder::new(&stream).unwrap().collect::<Result<_, _>>().unwrap();
//! assert_eq!(decoded.len(), 3);
//! ```

pub mod bitstream;
pub mod dct;
pub mod entropy;
pub mod error;
pub mod image;
pub mod intra;
pub mod metrics;
pub mod motion;
pub mod quant;
pub mod video;

pub use error::CodecError;
pub use image::{Image, Plane};
pub use intra::{decode_image, encode_image};
pub use metrics::{mse, psnr};
pub use quant::Quality;
pub use video::{frames_decoded, stream_fingerprint, FrameCache};

/// Result alias used throughout the codec crate.
pub type Result<T> = std::result::Result<T, CodecError>;
