//! Distortion metrics for the encoding-accuracy experiments (paper Fig. 2).

use crate::image::Image;

/// Mean squared error between two images of identical dimensions.
///
/// Panics if the dimensions differ — comparing different-sized rasters is a
/// logic error in the benchmark harness, not a recoverable condition.
pub fn mse(a: &Image, b: &Image) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "mse requires equal dimensions"
    );
    let mut acc = 0f64;
    for (&x, &y) in a.data().iter().zip(b.data()) {
        let d = x as f64 - y as f64;
        acc += d * d;
    }
    acc / a.data().len() as f64
}

/// Peak signal-to-noise ratio in dB. Identical images yield `f64::INFINITY`.
pub fn psnr(a: &Image, b: &Image) -> f64 {
    let m = mse(a, b);
    if m == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / m).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_have_infinite_psnr() {
        let img = Image::solid(8, 8, [10, 20, 30]);
        assert_eq!(mse(&img, &img), 0.0);
        assert!(psnr(&img, &img).is_infinite());
    }

    #[test]
    fn known_mse() {
        let a = Image::solid(2, 2, [0, 0, 0]);
        let b = Image::solid(2, 2, [10, 10, 10]);
        assert!((mse(&a, &b) - 100.0).abs() < 1e-9);
        // PSNR = 10 log10(255^2 / 100) ≈ 28.13 dB
        assert!((psnr(&a, &b) - 28.13).abs() < 0.01);
    }

    #[test]
    fn psnr_monotone_in_error() {
        let a = Image::solid(4, 4, [100, 100, 100]);
        let near = Image::solid(4, 4, [102, 102, 102]);
        let far = Image::solid(4, 4, [140, 140, 140]);
        assert!(psnr(&a, &near) > psnr(&a, &far));
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn mismatched_dimensions_panic() {
        let a = Image::new(2, 2);
        let b = Image::new(3, 3);
        let _ = mse(&a, &b);
    }
}
