//! Chunked columnar column storage with per-chunk statistics (zone maps).
//!
//! The building blocks of the Vortex-style patch layout: a collection is
//! split into chunks of [`DEFAULT_CHUNK_ROWS`] rows, and within a chunk each
//! attribute is stored as its own column with
//!
//! * a **statistics table** — value count, null count, min/max, and a
//!   sortedness flag — consulted by the read side to skip whole chunks
//!   before touching their pages (zone-map pushdown), and
//! * a **lightweight encoding** where one pays: delta + bit-packing for
//!   monotone integer runs (frame numbers, patch ids), frame-of-reference
//!   bit-packing for clustered integers and quantized features, and
//!   dictionary + bit-packing for low-cardinality strings (labels).
//!
//! Every encoding is lossless: `decode(encode(rows)) == rows`, bit for bit.
//! The chunk types here are plain data — the patch-level assembly, filter
//! masks, and parallel scan live in `deeplens-core::scan`, which composes
//! these columns into collections.

/// Default number of rows per column chunk.
///
/// Large enough that per-chunk statistics and encoding headers amortize,
/// small enough that a selective temporal filter over a sorted frame column
/// skips most of a collection.
pub const DEFAULT_CHUNK_ROWS: usize = 1024;

// --------------------------------------------------------------------------
// Bit-packing
// --------------------------------------------------------------------------

/// Fixed-width bit-packing of `u64` values into `u64` words.
pub mod bitpack {
    /// Number of bits needed to represent `max` (0 for the value 0).
    pub fn width_for(max: u64) -> u32 {
        64 - max.leading_zeros()
    }

    /// Pack `values` at `width` bits each, little-endian within words.
    /// `width == 0` packs nothing (all values are zero); `width == 64`
    /// stores values verbatim.
    pub fn pack(values: &[u64], width: u32) -> Vec<u64> {
        assert!(width <= 64, "bit width out of range");
        if width == 0 {
            return Vec::new();
        }
        let total_bits = values.len() * width as usize;
        let mut out = vec![0u64; total_bits.div_ceil(64)];
        let mut bit = 0usize;
        for &v in values {
            debug_assert!(width == 64 || v < (1u64 << width), "value exceeds width");
            let word = bit / 64;
            let off = (bit % 64) as u32;
            out[word] |= v << off;
            // The value may straddle a word boundary.
            if off + width > 64 {
                out[word + 1] |= v >> (64 - off);
            }
            bit += width as usize;
        }
        out
    }

    /// Unpack `len` values of `width` bits from `packed`.
    pub fn unpack(packed: &[u64], width: u32, len: usize) -> Vec<u64> {
        assert!(width <= 64, "bit width out of range");
        if width == 0 {
            return vec![0u64; len];
        }
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let mut out = Vec::with_capacity(len);
        let mut bit = 0usize;
        for _ in 0..len {
            let word = bit / 64;
            let off = (bit % 64) as u32;
            let mut v = packed[word] >> off;
            if off + width > 64 {
                v |= packed[word + 1] << (64 - off);
            }
            out.push(v & mask);
            bit += width as usize;
        }
        out
    }
}

// --------------------------------------------------------------------------
// Validity bitmaps
// --------------------------------------------------------------------------

/// Null tracking for a chunk: `None` means every row is valid (the common
/// case, stored without a bitmap).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Validity {
    /// One bit per row, set = valid. `None` when all rows are valid.
    bitmap: Option<Vec<u64>>,
    len: usize,
    null_count: usize,
}

impl Validity {
    fn from_rows<T>(rows: &[Option<T>]) -> Self {
        let null_count = rows.iter().filter(|r| r.is_none()).count();
        if null_count == 0 {
            return Validity {
                bitmap: None,
                len: rows.len(),
                null_count: 0,
            };
        }
        let mut bitmap = vec![0u64; rows.len().div_ceil(64)];
        for (i, row) in rows.iter().enumerate() {
            if row.is_some() {
                bitmap[i / 64] |= 1 << (i % 64);
            }
        }
        Validity {
            bitmap: Some(bitmap),
            len: rows.len(),
            null_count,
        }
    }

    fn is_valid(&self, row: usize) -> bool {
        match &self.bitmap {
            None => true,
            Some(b) => b[row / 64] & (1 << (row % 64)) != 0,
        }
    }
}

// --------------------------------------------------------------------------
// Per-chunk statistics
// --------------------------------------------------------------------------

/// The statistics table every chunk carries: the zone map the read side
/// consults before decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkStats<T> {
    /// Rows in the chunk (valid + null).
    pub count: usize,
    /// Rows with no value.
    pub null_count: usize,
    /// Smallest non-null value, if any row is valid.
    pub min: Option<T>,
    /// Largest non-null value, if any row is valid.
    pub max: Option<T>,
    /// Whether the non-null subsequence is non-decreasing.
    pub sorted: bool,
}

impl<T> ChunkStats<T> {
    /// Whether every row of the chunk is null (nothing can match any
    /// value predicate).
    pub fn all_null(&self) -> bool {
        self.null_count == self.count
    }
}

fn stats_from<T: Copy + PartialOrd>(rows: &[Option<T>]) -> ChunkStats<T> {
    let mut min: Option<T> = None;
    let mut max: Option<T> = None;
    let mut sorted = true;
    let mut prev: Option<T> = None;
    let mut null_count = 0usize;
    for row in rows {
        match row {
            None => null_count += 1,
            Some(v) => {
                if min.is_none_or(|m| *v < m) {
                    min = Some(*v);
                }
                if max.is_none_or(|m| *v > m) {
                    max = Some(*v);
                }
                if prev.is_some_and(|p| *v < p) {
                    sorted = false;
                }
                prev = Some(*v);
            }
        }
    }
    ChunkStats {
        count: rows.len(),
        null_count,
        min,
        max,
        sorted,
    }
}

// --------------------------------------------------------------------------
// Integer column chunks
// --------------------------------------------------------------------------

/// How an [`IntChunk`]'s non-null values are physically stored.
#[derive(Debug, Clone, PartialEq, Eq)]
enum IntEncoding {
    /// One `i64` per non-null value.
    Plain(Vec<i64>),
    /// First value + bit-packed non-negative deltas (monotone runs: frame
    /// numbers, patch ids).
    Delta {
        first: i64,
        width: u32,
        packed: Vec<u64>,
    },
    /// Bit-packed offsets from the chunk minimum (frame-of-reference).
    For {
        reference: i64,
        width: u32,
        packed: Vec<u64>,
    },
}

/// A chunk of nullable `i64` values with statistics and a lightweight
/// encoding chosen per chunk by encoded size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntChunk {
    validity: Validity,
    stats: ChunkStats<i64>,
    encoding: IntEncoding,
}

/// Offset of `v` from `reference` as a `u64` (always representable: the
/// span of two `i64`s fits in 64 bits).
fn offset_u64(v: i64, reference: i64) -> u64 {
    (v as i128 - reference as i128) as u64
}

impl IntChunk {
    /// Encode one chunk of rows, choosing the cheapest of plain / delta /
    /// frame-of-reference by packed size. Deterministic for given input.
    pub fn encode(rows: &[Option<i64>]) -> Self {
        let validity = Validity::from_rows(rows);
        let stats = stats_from(rows);
        let values: Vec<i64> = rows.iter().filter_map(|r| *r).collect();
        let encoding = Self::choose_encoding(&values, &stats);
        IntChunk {
            validity,
            stats,
            encoding,
        }
    }

    fn choose_encoding(values: &[i64], stats: &ChunkStats<i64>) -> IntEncoding {
        if values.is_empty() {
            return IntEncoding::Plain(Vec::new());
        }
        let plain_words = values.len(); // one u64-sized word per value
        let (min, max) = (stats.min.unwrap_or(0), stats.max.unwrap_or(0));
        // Frame-of-reference candidate: offsets from the minimum.
        let for_width = bitpack::width_for(offset_u64(max, min));
        let for_words = 1 + (values.len() * for_width as usize).div_ceil(64);
        // Delta candidate, only valid for sorted runs (deltas non-negative).
        let delta = if stats.sorted && values.len() > 1 {
            let max_delta = values
                .windows(2)
                .map(|w| offset_u64(w[1], w[0]))
                .max()
                .unwrap_or(0);
            let width = bitpack::width_for(max_delta);
            Some((
                width,
                1 + ((values.len() - 1) * width as usize).div_ceil(64),
            ))
        } else {
            None
        };
        match delta {
            Some((width, words)) if words <= for_words && words < plain_words => {
                let deltas: Vec<u64> = values.windows(2).map(|w| offset_u64(w[1], w[0])).collect();
                IntEncoding::Delta {
                    first: values[0],
                    width,
                    packed: bitpack::pack(&deltas, width),
                }
            }
            _ if for_words < plain_words => {
                let offsets: Vec<u64> = values.iter().map(|&v| offset_u64(v, min)).collect();
                IntEncoding::For {
                    reference: min,
                    width: for_width,
                    packed: bitpack::pack(&offsets, for_width),
                }
            }
            _ => IntEncoding::Plain(values.to_vec()),
        }
    }

    /// Decode the chunk back to its rows, nulls included.
    pub fn decode(&self) -> Vec<Option<i64>> {
        let n_valid = self.stats.count - self.stats.null_count;
        let values: Vec<i64> = match &self.encoding {
            IntEncoding::Plain(v) => v.clone(),
            IntEncoding::Delta {
                first,
                width,
                packed,
            } => {
                let deltas = bitpack::unpack(packed, *width, n_valid.saturating_sub(1));
                let mut out = Vec::with_capacity(n_valid);
                if n_valid > 0 {
                    let mut cur = *first;
                    out.push(cur);
                    for d in deltas {
                        cur = (cur as i128 + d as i128) as i64;
                        out.push(cur);
                    }
                }
                out
            }
            IntEncoding::For {
                reference,
                width,
                packed,
            } => bitpack::unpack(packed, *width, n_valid)
                .into_iter()
                .map(|off| (*reference as i128 + off as i128) as i64)
                .collect(),
        };
        self.scatter(values)
    }

    fn scatter(&self, values: Vec<i64>) -> Vec<Option<i64>> {
        let mut out = Vec::with_capacity(self.stats.count);
        let mut it = values.into_iter();
        for row in 0..self.stats.count {
            if self.validity.is_valid(row) {
                out.push(it.next());
            } else {
                out.push(None);
            }
        }
        out
    }

    /// The chunk's statistics table.
    pub fn stats(&self) -> &ChunkStats<i64> {
        &self.stats
    }

    /// Rows in the chunk.
    pub fn len(&self) -> usize {
        self.stats.count
    }

    /// Whether the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.stats.count == 0
    }

    /// Label of the physical encoding in use (for introspection and tests).
    pub fn encoding_label(&self) -> &'static str {
        match &self.encoding {
            IntEncoding::Plain(_) => "plain",
            IntEncoding::Delta { .. } => "delta",
            IntEncoding::For { .. } => "for",
        }
    }

    /// Approximate encoded payload size in bytes (excluding stats).
    pub fn encoded_bytes(&self) -> usize {
        let values = match &self.encoding {
            IntEncoding::Plain(v) => v.len() * 8,
            IntEncoding::Delta { packed, .. } => 8 + packed.len() * 8,
            IntEncoding::For { packed, .. } => 8 + packed.len() * 8,
        };
        values + self.validity.bitmap.as_ref().map_or(0, |b| b.len() * 8)
    }

    /// Zone-map check: can any row of this chunk hold a value in
    /// `[lo, hi]` (inclusive bounds)?
    pub fn may_overlap(&self, lo: i64, hi: i64) -> bool {
        match (self.stats.min, self.stats.max) {
            (Some(min), Some(max)) => max >= lo && min <= hi,
            _ => false, // all-null chunk: nothing can match
        }
    }
}

// --------------------------------------------------------------------------
// Float column chunks
// --------------------------------------------------------------------------

/// A chunk of nullable `f64` values. Stored plain; the statistics table
/// still enables zone-map skipping. Min/max use IEEE `total_cmp` so NaNs
/// order deterministically (a NaN max disables range pruning, which is the
/// conservative direction).
#[derive(Debug, Clone, PartialEq)]
pub struct FloatChunk {
    validity: Validity,
    stats: ChunkStats<f64>,
    values: Vec<f64>,
}

impl FloatChunk {
    /// Encode one chunk of rows.
    pub fn encode(rows: &[Option<f64>]) -> Self {
        let validity = Validity::from_rows(rows);
        let values: Vec<f64> = rows.iter().filter_map(|r| *r).collect();
        let mut min: Option<f64> = None;
        let mut max: Option<f64> = None;
        let mut sorted = true;
        let mut prev: Option<f64> = None;
        for &v in &values {
            if min.is_none_or(|m| v.total_cmp(&m).is_lt()) {
                min = Some(v);
            }
            if max.is_none_or(|m| v.total_cmp(&m).is_gt()) {
                max = Some(v);
            }
            if prev.is_some_and(|p| v.total_cmp(&p).is_lt()) {
                sorted = false;
            }
            prev = Some(v);
        }
        let stats = ChunkStats {
            count: rows.len(),
            null_count: validity.null_count,
            min,
            max,
            sorted,
        };
        FloatChunk {
            validity,
            stats,
            values,
        }
    }

    /// Decode the chunk back to its rows, nulls included.
    pub fn decode(&self) -> Vec<Option<f64>> {
        let mut out = Vec::with_capacity(self.stats.count);
        let mut it = self.values.iter().copied();
        for row in 0..self.stats.count {
            if self.validity.is_valid(row) {
                out.push(it.next());
            } else {
                out.push(None);
            }
        }
        out
    }

    /// The chunk's statistics table.
    pub fn stats(&self) -> &ChunkStats<f64> {
        &self.stats
    }

    /// Zone-map check: can any row hold a value in `[lo, hi)`? NaN bounds
    /// in the stats disable pruning (comparisons come out false), which is
    /// conservative and therefore correct.
    pub fn may_overlap(&self, lo: f64, hi: f64) -> bool {
        match (self.stats.min, self.stats.max) {
            (Some(min), Some(max)) => !(max < lo || min >= hi),
            _ => false,
        }
    }
}

// --------------------------------------------------------------------------
// String column chunks (dictionary + bit-packed codes)
// --------------------------------------------------------------------------

/// A chunk of nullable strings, dictionary-encoded: a sorted dictionary of
/// the chunk's distinct values plus bit-packed codes. The dictionary makes
/// equality pruning *exact* within the chunk (binary search), strictly
/// stronger than a min/max zone map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrChunk {
    validity: Validity,
    count: usize,
    null_count: usize,
    sorted: bool,
    /// Sorted distinct values.
    dict: Vec<String>,
    /// Bit-packed dictionary codes, one per non-null row.
    code_width: u32,
    codes: Vec<u64>,
}

impl StrChunk {
    /// Encode one chunk of rows.
    pub fn encode(rows: &[Option<&str>]) -> Self {
        let validity = Validity::from_rows(rows);
        let mut dict: Vec<String> = rows
            .iter()
            .filter_map(|r| r.map(str::to_string))
            .collect::<std::collections::BTreeSet<String>>()
            .into_iter()
            .collect();
        dict.shrink_to_fit();
        let mut sorted = true;
        let mut prev: Option<&str> = None;
        let codes_raw: Vec<u64> = rows
            .iter()
            .filter_map(|r| *r)
            .map(|s| {
                if prev.is_some_and(|p| s < p) {
                    sorted = false;
                }
                prev = Some(s);
                // Dictionary lookup cannot fail: dict was built from rows.
                dict.binary_search_by(|d| d.as_str().cmp(s))
                    .map_or(0, |i| i) as u64
            })
            .collect();
        let code_width = bitpack::width_for(dict.len().saturating_sub(1) as u64);
        StrChunk {
            count: rows.len(),
            null_count: validity.null_count,
            validity,
            sorted,
            codes: bitpack::pack(&codes_raw, code_width),
            code_width,
            dict,
        }
    }

    /// Decode the chunk back to its rows, nulls included.
    pub fn decode(&self) -> Vec<Option<&str>> {
        let n_valid = self.count - self.null_count;
        let codes = bitpack::unpack(&self.codes, self.code_width, n_valid);
        let mut out = Vec::with_capacity(self.count);
        let mut it = codes.into_iter();
        for row in 0..self.count {
            if self.validity.is_valid(row) {
                let code = it.next().unwrap_or(0) as usize;
                out.push(self.dict.get(code).map(String::as_str));
            } else {
                out.push(None);
            }
        }
        out
    }

    /// Rows in the chunk.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Null rows in the chunk.
    pub fn null_count(&self) -> usize {
        self.null_count
    }

    /// Whether the non-null subsequence is non-decreasing.
    pub fn sorted(&self) -> bool {
        self.sorted
    }

    /// The chunk's distinct values, sorted.
    pub fn dict(&self) -> &[String] {
        &self.dict
    }

    /// Exact equality pruning: whether any row of the chunk equals `s`.
    pub fn may_contain(&self, s: &str) -> bool {
        self.dict.binary_search_by(|d| d.as_str().cmp(s)).is_ok()
    }

    /// Lexicographic min/max of the chunk, if any row is valid.
    pub fn min_max(&self) -> Option<(&str, &str)> {
        match (self.dict.first(), self.dict.last()) {
            (Some(a), Some(b)) => Some((a.as_str(), b.as_str())),
            _ => None,
        }
    }
}

// --------------------------------------------------------------------------
// Boolean column chunks
// --------------------------------------------------------------------------

/// A chunk of nullable booleans, stored as a bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoolChunk {
    validity: Validity,
    stats: ChunkStats<bool>,
    bits: Vec<u64>,
}

impl BoolChunk {
    /// Encode one chunk of rows.
    pub fn encode(rows: &[Option<bool>]) -> Self {
        let validity = Validity::from_rows(rows);
        let stats = stats_from(rows);
        let mut bits = vec![0u64; rows.len().div_ceil(64)];
        for (i, row) in rows.iter().enumerate() {
            if row == &Some(true) {
                bits[i / 64] |= 1 << (i % 64);
            }
        }
        BoolChunk {
            validity,
            stats,
            bits,
        }
    }

    /// Decode the chunk back to its rows, nulls included.
    pub fn decode(&self) -> Vec<Option<bool>> {
        (0..self.stats.count)
            .map(|i| {
                self.validity
                    .is_valid(i)
                    .then(|| self.bits[i / 64] & (1 << (i % 64)) != 0)
            })
            .collect()
    }

    /// The chunk's statistics table.
    pub fn stats(&self) -> &ChunkStats<bool> {
        &self.stats
    }

    /// Whether any row of the chunk equals `b`.
    pub fn may_contain(&self, b: bool) -> bool {
        match (self.stats.min, self.stats.max) {
            (Some(min), Some(max)) => min == b || max == b,
            _ => false,
        }
    }
}

// --------------------------------------------------------------------------
// Feature-vector column chunks
// --------------------------------------------------------------------------

/// Physical storage of a [`FeatureChunk`]'s flattened values.
#[derive(Debug, Clone, PartialEq)]
enum FeatureValues {
    /// Raw `f32` values.
    Raw(Vec<f32>),
    /// Frame-of-reference over quantized features: every value in the chunk
    /// is integral and exactly representable, so it round-trips through
    /// `reference + bit-packed offset` losslessly.
    Quantized {
        reference: i64,
        width: u32,
        packed: Vec<u64>,
    },
}

/// Largest magnitude for which consecutive integers are exact in `f32` —
/// the quantized-feature encoding is only lossless inside this range.
const QUANTIZED_MAX_ABS: f32 = 16_777_216.0; // 2^24

/// A chunk of nullable variable-length `f32` vectors (feature payloads).
///
/// Quantized features — embeddings and histograms whose entries are whole
/// numbers, e.g. u8-scaled color histograms — are detected per chunk and
/// stored frame-of-reference + bit-packed; everything else stays raw `f32`.
/// Either way the round trip is bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureChunk {
    count: usize,
    null_count: usize,
    validity: Validity,
    /// Prefix offsets into the flattened values, one per non-null row + 1.
    offsets: Vec<u32>,
    values: FeatureValues,
}

impl FeatureChunk {
    /// Encode one chunk of rows.
    pub fn encode(rows: &[Option<&[f32]>]) -> Self {
        let validity = Validity::from_rows(rows);
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        offsets.push(0u32);
        let mut flat: Vec<f32> = Vec::new();
        for row in rows.iter().filter_map(|r| *r) {
            flat.extend_from_slice(row);
            offsets.push(flat.len() as u32);
        }
        let quantized = !flat.is_empty()
            && flat
                .iter()
                .all(|v| v.fract() == 0.0 && v.abs() <= QUANTIZED_MAX_ABS);
        let values = if quantized {
            let ints: Vec<i64> = flat.iter().map(|&v| v as i64).collect();
            let reference = ints.iter().copied().min().unwrap_or(0);
            let max = ints.iter().copied().max().unwrap_or(0);
            let width = bitpack::width_for(offset_u64(max, reference));
            let offs: Vec<u64> = ints.iter().map(|&v| offset_u64(v, reference)).collect();
            FeatureValues::Quantized {
                reference,
                width,
                packed: bitpack::pack(&offs, width),
            }
        } else {
            FeatureValues::Raw(flat)
        };
        FeatureChunk {
            count: rows.len(),
            null_count: validity.null_count,
            validity,
            offsets,
            values,
        }
    }

    /// Decode the chunk back to its rows, nulls included.
    pub fn decode(&self) -> Vec<Option<Vec<f32>>> {
        let flat: Vec<f32> = match &self.values {
            FeatureValues::Raw(v) => v.clone(),
            FeatureValues::Quantized {
                reference,
                width,
                packed,
            } => {
                let total = *self.offsets.last().unwrap_or(&0) as usize;
                bitpack::unpack(packed, *width, total)
                    .into_iter()
                    .map(|off| (*reference as i128 + off as i128) as f32)
                    .collect()
            }
        };
        let mut out = Vec::with_capacity(self.count);
        let mut valid_row = 0usize;
        for row in 0..self.count {
            if self.validity.is_valid(row) {
                let lo = self.offsets[valid_row] as usize;
                let hi = self.offsets[valid_row + 1] as usize;
                out.push(Some(flat[lo..hi].to_vec()));
                valid_row += 1;
            } else {
                out.push(None);
            }
        }
        out
    }

    /// Rows in the chunk.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Null rows in the chunk.
    pub fn null_count(&self) -> usize {
        self.null_count
    }

    /// Whether the chunk detected quantized features and stored them
    /// frame-of-reference + bit-packed.
    pub fn is_quantized(&self) -> bool {
        matches!(self.values, FeatureValues::Quantized { .. })
    }

    /// Approximate encoded payload size in bytes.
    pub fn encoded_bytes(&self) -> usize {
        let values = match &self.values {
            FeatureValues::Raw(v) => v.len() * 4,
            FeatureValues::Quantized { packed, .. } => 8 + packed.len() * 8,
        };
        values + self.offsets.len() * 4
    }

    /// Decode the chunk into [`PackedFeatures`]: one flat value buffer plus
    /// per-row spans, instead of the per-row `Vec` allocations
    /// [`FeatureChunk::decode`] performs. This is the form the packed-form
    /// compute kernels consume chunk-at-a-time; the values are bit-identical
    /// to the rows [`FeatureChunk::decode`] returns.
    pub fn decode_packed(&self) -> PackedFeatures {
        let values: Vec<f32> = match &self.values {
            FeatureValues::Raw(v) => v.clone(),
            FeatureValues::Quantized {
                reference,
                width,
                packed,
            } => {
                let total = *self.offsets.last().unwrap_or(&0) as usize;
                bitpack::unpack(packed, *width, total)
                    .into_iter()
                    .map(|off| (*reference as i128 + off as i128) as f32)
                    .collect()
            }
        };
        if self.null_count == 0 {
            return PackedFeatures {
                values,
                offsets: self.offsets.clone(),
                valid: None,
            };
        }
        // Re-express the non-null prefix offsets per row: a null row repeats
        // the previous offset (empty span) and is marked invalid.
        let mut offsets = Vec::with_capacity(self.count + 1);
        offsets.push(0u32);
        let mut valid = Vec::with_capacity(self.count);
        let mut valid_row = 0usize;
        for row in 0..self.count {
            if self.validity.is_valid(row) {
                valid_row += 1;
                valid.push(true);
            } else {
                valid.push(false);
            }
            offsets.push(self.offsets[valid_row]);
        }
        PackedFeatures {
            values,
            offsets,
            valid: Some(valid),
        }
    }
}

/// A feature chunk decoded into packed form: the non-null rows' values
/// concatenated in row order in one flat buffer, with per-row spans into it.
///
/// This is the zero-per-row-allocation counterpart of
/// [`FeatureChunk::decode`]: where `decode` hands back a
/// `Vec<Option<Vec<f32>>>`, the packed form keeps the whole chunk in one
/// `Vec<f32>` plus a `rows + 1` offset table, which is what the packed-form
/// join/dedup kernels iterate without materializing rows. A null row has an
/// empty span and reads back as `None`; a *valid* row with an empty span is
/// a genuine zero-length feature vector.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedFeatures {
    values: Vec<f32>,
    /// Per-row prefix offsets (`rows + 1` entries, monotone).
    offsets: Vec<u32>,
    /// Per-row validity; `None` when every row is valid.
    valid: Option<Vec<bool>>,
}

impl PackedFeatures {
    /// A packed block with no rows.
    pub fn empty() -> Self {
        PackedFeatures {
            values: Vec::new(),
            offsets: vec![0],
            valid: None,
        }
    }

    /// Number of rows (valid + null).
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// The flat value buffer (non-null rows concatenated in row order).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The per-row prefix offsets into [`PackedFeatures::values`]
    /// (`rows + 1` entries).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Per-row validity flags, or `None` when every row is valid.
    pub fn validity(&self) -> Option<&[bool]> {
        self.valid.as_deref()
    }

    /// Row `i`'s feature vector, `None` for a null row.
    pub fn row(&self, i: usize) -> Option<&[f32]> {
        if self.valid.as_ref().is_some_and(|v| !v[i]) {
            return None;
        }
        Some(&self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize])
    }

    /// When every row is valid and shares one non-zero length, that length —
    /// the fixed-stride fast path (quantized frame-of-reference feature
    /// chunks are typically fixed-stride).
    pub fn fixed_stride(&self) -> Option<usize> {
        if self.valid.is_some() || self.rows() == 0 {
            return None;
        }
        let stride = self.offsets[1] as usize;
        if stride == 0 {
            return None;
        }
        for w in self.offsets.windows(2) {
            if (w[1] - w[0]) as usize != stride {
                return None;
            }
        }
        Some(stride)
    }

    /// Gather the given rows (chunk-local, strictly increasing) into a new
    /// packed block, preserving null rows among them.
    pub fn select(&self, rows: &[u32]) -> PackedFeatures {
        let mut values = Vec::new();
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        offsets.push(0u32);
        let mut valid: Option<Vec<bool>> = self.valid.as_ref().map(|_| Vec::new());
        for &r in rows {
            let r = r as usize;
            let (lo, hi) = (self.offsets[r] as usize, self.offsets[r + 1] as usize);
            values.extend_from_slice(&self.values[lo..hi]);
            offsets.push(values.len() as u32);
            if let (Some(out), Some(src)) = (valid.as_mut(), self.valid.as_ref()) {
                out.push(src[r]);
            }
        }
        PackedFeatures {
            values,
            offsets,
            valid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitpack_roundtrip_various_widths() {
        for width in [0u32, 1, 3, 7, 13, 31, 33, 63, 64] {
            let max = if width == 0 {
                0
            } else if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..100)
                .map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15) & max)
                .collect();
            let packed = bitpack::pack(&values, width);
            assert_eq!(bitpack::unpack(&packed, width, values.len()), values);
        }
    }

    #[test]
    fn bitpack_width_for_boundaries() {
        assert_eq!(bitpack::width_for(0), 0);
        assert_eq!(bitpack::width_for(1), 1);
        assert_eq!(bitpack::width_for(2), 2);
        assert_eq!(bitpack::width_for(255), 8);
        assert_eq!(bitpack::width_for(256), 9);
        assert_eq!(bitpack::width_for(u64::MAX), 64);
    }

    #[test]
    fn int_chunk_monotone_run_uses_delta_and_roundtrips() {
        let rows: Vec<Option<i64>> = (0..500).map(|i| Some(1000 + i * 3)).collect();
        let chunk = IntChunk::encode(&rows);
        assert_eq!(chunk.encoding_label(), "delta");
        assert!(chunk.stats().sorted);
        assert_eq!(chunk.stats().min, Some(1000));
        assert_eq!(chunk.stats().max, Some(1000 + 499 * 3));
        assert_eq!(chunk.stats().null_count, 0);
        assert_eq!(chunk.decode(), rows);
        assert!(
            chunk.encoded_bytes() < rows.len() * 8 / 4,
            "delta + bit-packing must compress a stride-3 run at least 4x, got {}",
            chunk.encoded_bytes()
        );
    }

    #[test]
    fn int_chunk_clustered_values_use_for() {
        // Unsorted but clustered: FoR wins, delta is unavailable.
        let rows: Vec<Option<i64>> = (0..300).map(|i| Some(5_000_000 + (i * 37) % 256)).collect();
        let chunk = IntChunk::encode(&rows);
        assert_eq!(chunk.encoding_label(), "for");
        assert!(!chunk.stats().sorted);
        assert_eq!(chunk.decode(), rows);
        assert!(chunk.encoded_bytes() < rows.len() * 8 / 4);
    }

    #[test]
    fn int_chunk_extremes_fall_back_to_plain_and_roundtrip() {
        let rows = vec![Some(i64::MIN), Some(i64::MAX), Some(0), Some(-1)];
        let chunk = IntChunk::encode(&rows);
        assert_eq!(chunk.decode(), rows);
        assert_eq!(chunk.stats().min, Some(i64::MIN));
        assert_eq!(chunk.stats().max, Some(i64::MAX));
        // A sorted pair spanning the whole i64 range exercises the 64-bit
        // delta path.
        let wide = vec![Some(i64::MIN), Some(i64::MAX)];
        assert_eq!(IntChunk::encode(&wide).decode(), wide);
    }

    #[test]
    fn int_chunk_nulls_and_zone_map() {
        let rows = vec![Some(10), None, Some(20), None, Some(15)];
        let chunk = IntChunk::encode(&rows);
        assert_eq!(chunk.stats().null_count, 2);
        assert_eq!(chunk.decode(), rows);
        assert!(chunk.may_overlap(15, 30));
        assert!(!chunk.may_overlap(21, 100));
        assert!(!chunk.may_overlap(-5, 9));
        // All-null chunks match nothing.
        let nulls: Vec<Option<i64>> = vec![None; 8];
        let chunk = IntChunk::encode(&nulls);
        assert!(chunk.stats().all_null());
        assert!(!chunk.may_overlap(i64::MIN, i64::MAX));
        assert_eq!(chunk.decode(), nulls);
    }

    #[test]
    fn float_chunk_roundtrip_stats_and_pruning() {
        let rows = vec![Some(1.5), None, Some(-2.25), Some(7.0)];
        let chunk = FloatChunk::encode(&rows);
        assert_eq!(chunk.decode(), rows);
        assert_eq!(chunk.stats().min, Some(-2.25));
        assert_eq!(chunk.stats().max, Some(7.0));
        assert!(chunk.may_overlap(0.0, 2.0));
        assert!(!chunk.may_overlap(7.5, 100.0));
        assert!(!chunk.may_overlap(-10.0, -3.0));
        // The range is half-open: [7.0, 7.0) matches nothing... but the
        // zone map only sees bounds, so exactly-at-max stays conservative.
        assert!(chunk.may_overlap(7.0, 8.0));
    }

    #[test]
    fn float_chunk_nan_disables_pruning_conservatively() {
        let rows = vec![Some(1.0), Some(f64::NAN)];
        let chunk = FloatChunk::encode(&rows);
        // NaN is total_cmp-greater than every number: it becomes the max,
        // and `max < lo` is false for every lo — the chunk is never skipped.
        assert!(chunk.may_overlap(50.0, 60.0));
        let back = chunk.decode();
        assert_eq!(back[0], Some(1.0));
        assert!(back[1].is_some_and(f64::is_nan));
    }

    #[test]
    fn str_chunk_dictionary_roundtrip_and_exact_pruning() {
        let rows = vec![Some("car"), Some("person"), None, Some("car"), Some("bike")];
        let chunk = StrChunk::encode(&rows);
        assert_eq!(chunk.decode(), rows);
        assert_eq!(chunk.dict(), &["bike", "car", "person"]);
        assert_eq!(chunk.null_count(), 1);
        assert!(!chunk.sorted());
        assert!(chunk.may_contain("car"));
        assert!(!chunk.may_contain("giraffe"));
        assert_eq!(chunk.min_max(), Some(("bike", "person")));
        // Low cardinality packs far below one pointer per row.
        let many: Vec<Option<&str>> = (0..1000)
            .map(|i| Some(if i % 2 == 0 { "car" } else { "person" }))
            .collect();
        let chunk = StrChunk::encode(&many);
        assert_eq!(chunk.decode(), many);
        assert!(chunk.may_contain("person"));
    }

    #[test]
    fn bool_chunk_roundtrip_and_pruning() {
        let rows = vec![Some(true), None, Some(false), Some(true)];
        let chunk = BoolChunk::encode(&rows);
        assert_eq!(chunk.decode(), rows);
        assert!(chunk.may_contain(true));
        assert!(chunk.may_contain(false));
        let uniform = vec![Some(true); 10];
        let chunk = BoolChunk::encode(&uniform);
        assert!(!chunk.may_contain(false));
        assert_eq!(chunk.decode(), uniform);
    }

    #[test]
    fn feature_chunk_quantized_for_roundtrip() {
        // Whole-number features (u8-scaled histograms): the FoR path.
        let a: Vec<f32> = vec![200.0, 201.0, 199.0];
        let b: Vec<f32> = vec![205.0, 200.0];
        let rows: Vec<Option<&[f32]>> = vec![Some(&a), None, Some(&b)];
        let chunk = FeatureChunk::encode(&rows);
        assert!(chunk.is_quantized());
        assert_eq!(chunk.decode(), vec![Some(a.clone()), None, Some(b.clone())]);
        assert_eq!(chunk.null_count(), 1);
        // 5 values in [199, 205]: 3-bit offsets, far below 4 bytes/value.
        assert!(chunk.encoded_bytes() < 5 * 4 + chunk.offsets.len() * 4);
    }

    #[test]
    fn feature_chunk_fractional_values_stay_raw_and_exact() {
        let a: Vec<f32> = vec![0.1, -2.75, 3.5];
        let rows: Vec<Option<&[f32]>> = vec![Some(&a)];
        let chunk = FeatureChunk::encode(&rows);
        assert!(!chunk.is_quantized());
        assert_eq!(chunk.decode(), vec![Some(a)]);
        // Values beyond the exact-integer range of f32 must not quantize.
        let big: Vec<f32> = vec![3.0e7, 1.0];
        let rows: Vec<Option<&[f32]>> = vec![Some(&big)];
        let chunk = FeatureChunk::encode(&rows);
        assert!(!chunk.is_quantized());
        assert_eq!(chunk.decode(), vec![Some(big)]);
    }

    #[test]
    fn feature_chunk_variable_dims_and_empty_vectors() {
        let a: Vec<f32> = vec![1.0, 2.0];
        let b: Vec<f32> = vec![];
        let c: Vec<f32> = vec![5.0, 6.0, 7.0, 8.0];
        let rows: Vec<Option<&[f32]>> = vec![Some(&a), Some(&b), None, Some(&c)];
        let chunk = FeatureChunk::encode(&rows);
        assert_eq!(chunk.decode(), vec![Some(a), Some(b), None, Some(c)]);
    }

    #[test]
    fn packed_decode_matches_row_decode() {
        // Mixed dims, an empty-but-valid row, nulls, and both encodings.
        let a: Vec<f32> = vec![1.0, 2.0];
        let b: Vec<f32> = vec![];
        let c: Vec<f32> = vec![5.5, 6.25, 7.0];
        for rows in [
            vec![Some(&a[..]), Some(&b[..]), None, Some(&c[..])],
            vec![Some(&a[..]), Some(&a[..])],
            vec![None, None],
            vec![],
        ] {
            let chunk = FeatureChunk::encode(&rows);
            let packed = chunk.decode_packed();
            let decoded = chunk.decode();
            assert_eq!(packed.rows(), decoded.len());
            for (i, row) in decoded.iter().enumerate() {
                assert_eq!(packed.row(i), row.as_deref());
            }
            assert_eq!(packed.offsets().len(), packed.rows() + 1);
        }
    }

    #[test]
    fn packed_decode_quantized_is_bit_exact() {
        let a: Vec<f32> = vec![200.0, 201.0, 199.0];
        let b: Vec<f32> = vec![205.0, 200.0, 203.0];
        let rows: Vec<Option<&[f32]>> = vec![Some(&a), Some(&b)];
        let chunk = FeatureChunk::encode(&rows);
        assert!(chunk.is_quantized());
        let packed = chunk.decode_packed();
        assert_eq!(packed.values(), &[200.0, 201.0, 199.0, 205.0, 200.0, 203.0]);
        assert_eq!(packed.fixed_stride(), Some(3));
        assert!(packed.validity().is_none());
    }

    #[test]
    fn packed_select_gathers_rows_and_nulls() {
        let a: Vec<f32> = vec![1.0, 2.0];
        let c: Vec<f32> = vec![5.0, 6.0, 7.0];
        let rows: Vec<Option<&[f32]>> = vec![Some(&a), None, Some(&c), Some(&a)];
        let packed = FeatureChunk::encode(&rows).decode_packed();
        assert_eq!(packed.fixed_stride(), None);
        let sel = packed.select(&[1, 2]);
        assert_eq!(sel.rows(), 2);
        assert_eq!(sel.row(0), None);
        assert_eq!(sel.row(1), Some(&c[..]));
        let none = packed.select(&[]);
        assert!(none.is_empty());
        assert_eq!(PackedFeatures::empty().rows(), 0);
    }

    #[test]
    fn empty_chunks_are_well_formed() {
        assert_eq!(IntChunk::encode(&[]).decode(), Vec::<Option<i64>>::new());
        assert!(IntChunk::encode(&[]).is_empty());
        assert_eq!(FloatChunk::encode(&[]).decode(), Vec::<Option<f64>>::new());
        assert_eq!(StrChunk::encode(&[]).decode(), Vec::<Option<&str>>::new());
        assert_eq!(BoolChunk::encode(&[]).decode(), Vec::<Option<bool>>::new());
        assert!(FeatureChunk::encode(&[]).decode().is_empty());
    }
}
