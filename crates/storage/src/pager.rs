//! File-backed page allocation and I/O.
//!
//! A database file is `[header page 0][page 1][page 2]...`. The header keeps
//! a magic number, the page count, a free-list head, and two access-method
//! root pointers that the B+Tree / hash store persist across opens. Freed
//! pages are chained through the first four bytes of their payload.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::page::{Page, PageId, NO_PAGE, PAGE_SIZE};
use crate::{Result, StorageError};

/// Magic number in the header page ("DLPG").
pub const FILE_MAGIC: u32 = 0x444C_5047;

// Header page layout (offsets into payload):
const H_MAGIC: usize = 0;
const H_PAGE_COUNT: usize = 4;
const H_FREE_HEAD: usize = 8;
const H_ROOT_A: usize = 12;
const H_ROOT_B: usize = 16;

/// Page allocator and raw page I/O over a single file.
#[derive(Debug)]
pub struct Pager {
    file: File,
    path: PathBuf,
    /// Total pages in the file, including the header page.
    page_count: u32,
    free_head: PageId,
    root_a: PageId,
    root_b: PageId,
    header_dirty: bool,
}

impl Pager {
    /// Create a fresh database file (truncating any existing one).
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        let mut pager = Pager {
            file,
            path: path.as_ref().to_path_buf(),
            page_count: 1,
            free_head: NO_PAGE,
            root_a: NO_PAGE,
            root_b: NO_PAGE,
            header_dirty: true,
        };
        pager.flush_header()?;
        Ok(pager)
    }

    /// Open an existing database file.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path.as_ref())?;
        let mut bytes = [0u8; PAGE_SIZE];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut bytes)?;
        let header = Page::from_bytes(bytes, 0)?;
        if header.get_u32(H_MAGIC) != FILE_MAGIC {
            return Err(StorageError::BadHeader(format!(
                "{} is not a DeepLens storage file",
                path.as_ref().display()
            )));
        }
        Ok(Pager {
            file,
            path: path.as_ref().to_path_buf(),
            page_count: header.get_u32(H_PAGE_COUNT),
            free_head: header.get_u32(H_FREE_HEAD),
            root_a: header.get_u32(H_ROOT_A),
            root_b: header.get_u32(H_ROOT_B),
            header_dirty: false,
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total pages in the file (including header and free pages).
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// File size in bytes implied by the page count.
    pub fn byte_size(&self) -> u64 {
        self.page_count as u64 * PAGE_SIZE as u64
    }

    /// Primary access-method root (used by the B+Tree).
    pub fn root_a(&self) -> PageId {
        self.root_a
    }

    /// Set the primary root pointer.
    pub fn set_root_a(&mut self, id: PageId) {
        self.root_a = id;
        self.header_dirty = true;
    }

    /// Secondary access-method root (used by the hash store directory).
    pub fn root_b(&self) -> PageId {
        self.root_b
    }

    /// Set the secondary root pointer.
    pub fn set_root_b(&mut self, id: PageId) {
        self.root_b = id;
        self.header_dirty = true;
    }

    /// Read a page from disk, verifying its checksum.
    pub fn read_page(&mut self, id: PageId) -> Result<Page> {
        if id >= self.page_count {
            return Err(StorageError::PageOutOfBounds {
                page_id: id,
                page_count: self.page_count,
            });
        }
        let mut bytes = [0u8; PAGE_SIZE];
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.read_exact(&mut bytes)?;
        Page::from_bytes(bytes, id)
    }

    /// Write a page image to disk (checksum stamped automatically).
    pub fn write_page(&mut self, id: PageId, page: &Page) -> Result<()> {
        if id >= self.page_count {
            return Err(StorageError::PageOutOfBounds {
                page_id: id,
                page_count: self.page_count,
            });
        }
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(&page.to_bytes())?;
        Ok(())
    }

    /// Allocate a page: pop the free list or extend the file.
    pub fn allocate(&mut self) -> Result<PageId> {
        if self.free_head != NO_PAGE {
            let id = self.free_head;
            let page = self.read_page(id)?;
            self.free_head = page.get_u32(0);
            self.header_dirty = true;
            return Ok(id);
        }
        let id = self.page_count;
        self.page_count += 1;
        self.header_dirty = true;
        // Extend the file with a zeroed page so subsequent reads succeed.
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(&Page::zeroed().to_bytes())?;
        Ok(id)
    }

    /// Return a page to the free list.
    pub fn free(&mut self, id: PageId) -> Result<()> {
        debug_assert_ne!(id, 0, "cannot free the header page");
        let mut page = Page::zeroed();
        page.put_u32(0, self.free_head);
        self.write_page(id, &page)?;
        self.free_head = id;
        self.header_dirty = true;
        Ok(())
    }

    /// Persist the header page if it changed.
    pub fn flush_header(&mut self) -> Result<()> {
        if !self.header_dirty {
            return Ok(());
        }
        let mut header = Page::zeroed();
        header.put_u32(H_MAGIC, FILE_MAGIC);
        header.put_u32(H_PAGE_COUNT, self.page_count);
        header.put_u32(H_FREE_HEAD, self.free_head);
        header.put_u32(H_ROOT_A, self.root_a);
        header.put_u32(H_ROOT_B, self.root_b);
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header.to_bytes())?;
        self.header_dirty = false;
        Ok(())
    }

    /// Flush the header and fsync the file.
    pub fn sync(&mut self) -> Result<()> {
        self.flush_header()?;
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("deeplens-pager-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.dlp", std::process::id()))
    }

    #[test]
    fn create_allocate_write_read() {
        let path = tmpfile("basic");
        let mut pager = Pager::create(&path).unwrap();
        let id = pager.allocate().unwrap();
        assert_eq!(id, 1);
        let mut page = Page::zeroed();
        page.put_slice(0, b"the quick brown fox");
        pager.write_page(id, &page).unwrap();
        let back = pager.read_page(id).unwrap();
        assert_eq!(back.get_slice(0, 19), b"the quick brown fox");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn reopen_preserves_state() {
        let path = tmpfile("reopen");
        {
            let mut pager = Pager::create(&path).unwrap();
            let id = pager.allocate().unwrap();
            let mut page = Page::zeroed();
            page.put_u32(0, 4242);
            pager.write_page(id, &page).unwrap();
            pager.set_root_a(id);
            pager.sync().unwrap();
        }
        let mut pager = Pager::open(&path).unwrap();
        assert_eq!(pager.page_count(), 2);
        let root = pager.root_a();
        assert_eq!(root, 1);
        assert_eq!(pager.read_page(root).unwrap().get_u32(0), 4242);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn free_list_reuses_pages() {
        let path = tmpfile("freelist");
        let mut pager = Pager::create(&path).unwrap();
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_eq!((a, b), (1, 2));
        pager.free(a).unwrap();
        let c = pager.allocate().unwrap();
        assert_eq!(c, a, "freed page should be reused");
        let d = pager.allocate().unwrap();
        assert_eq!(d, 3, "exhausted free list extends the file");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let path = tmpfile("oob");
        let mut pager = Pager::create(&path).unwrap();
        assert!(matches!(
            pager.read_page(99),
            Err(StorageError::PageOutOfBounds { page_id: 99, .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn open_rejects_non_database() {
        let path = tmpfile("notdb");
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        assert!(Pager::open(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
