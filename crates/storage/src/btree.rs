//! On-disk B+Tree with variable-length byte keys and values.
//!
//! This is the workhorse access method of DeepLens storage: the Frame File
//! keeps frames sorted by frame number in one of these (enabling temporal
//! filter pushdown, paper §3.1), the Segmented File keys clips by start
//! frame, and all single-dimensional secondary indexes over patch metadata
//! are B+Trees as well.
//!
//! Layout
//! ------
//! * Leaf pages hold sorted `(key, value)` entries and a right-sibling
//!   pointer for range scans.
//! * Internal pages hold `n` separator keys and `n + 1` children.
//! * Values larger than [`MAX_INLINE_VALUE`] spill into chained overflow
//!   pages, so whole encoded frames (tens of KiB) store cleanly.
//! * Keys sort by raw byte order; [`keys::encode_u64`] provides an
//!   order-preserving encoding for numeric keys.
//!
//! Deletes are lazy (no rebalancing); pages only split. This matches the
//! append-mostly ingest patterns of visual analytics and keeps the structure
//! simple to verify.

use std::ops::Bound;
use std::path::Path;

use crate::buffer::BufferPool;
use crate::page::{Page, PageId, NO_PAGE, PAGE_PAYLOAD};
use crate::pager::Pager;
use crate::{Result, StorageError};

/// Maximum key length in bytes.
pub const MAX_KEY: usize = 512;
/// Values longer than this spill to overflow pages.
pub const MAX_INLINE_VALUE: usize = 480;

const T_INTERNAL: u8 = 2;
const T_LEAF: u8 = 1;
const T_OVERFLOW: u8 = 3;

/// Bytes of overflow payload per overflow page: type(1) + next(4) + len(2).
const OVERFLOW_CAP: usize = PAGE_PAYLOAD - 7;

/// Order-preserving key encodings for numeric keys.
pub mod keys {
    /// Encode a `u64` so byte order equals numeric order (big-endian).
    pub fn encode_u64(v: u64) -> [u8; 8] {
        v.to_be_bytes()
    }

    /// Decode a key produced by [`encode_u64`].
    pub fn decode_u64(b: &[u8]) -> u64 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&b[..8]);
        u64::from_be_bytes(buf)
    }

    /// Encode an `i64` order-preservingly (offset-binary then big-endian).
    pub fn encode_i64(v: i64) -> [u8; 8] {
        ((v as u64) ^ (1u64 << 63)).to_be_bytes()
    }

    /// Decode a key produced by [`encode_i64`].
    pub fn decode_i64(b: &[u8]) -> i64 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&b[..8]);
        (u64::from_be_bytes(buf) ^ (1u64 << 63)) as i64
    }

    /// Encode an `f64` order-preservingly (IEEE 754 total-order trick).
    /// NaNs sort above all numbers.
    pub fn encode_f64(v: f64) -> [u8; 8] {
        let bits = v.to_bits();
        let flipped = if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1u64 << 63)
        };
        flipped.to_be_bytes()
    }

    /// Decode a key produced by [`encode_f64`].
    pub fn decode_f64(b: &[u8]) -> f64 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&b[..8]);
        let flipped = u64::from_be_bytes(buf);
        let bits = if flipped >> 63 == 1 {
            flipped & !(1u64 << 63)
        } else {
            !flipped
        };
        f64::from_bits(bits)
    }
}

#[derive(Debug, Clone)]
enum ValRef {
    Inline(Vec<u8>),
    Overflow { head: PageId, len: u32 },
}

impl ValRef {
    fn entry_len(&self) -> usize {
        match self {
            ValRef::Inline(v) => v.len(),
            ValRef::Overflow { .. } => 8,
        }
    }
}

/// A node split: the separator key and the page id of the new right node.
type Split = (Vec<u8>, PageId);

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<Vec<u8>>,
        vals: Vec<ValRef>,
        next: PageId,
    },
    Internal {
        keys: Vec<Vec<u8>>,
        children: Vec<PageId>,
    },
}

impl Node {
    fn serialized_size(&self) -> usize {
        match self {
            Node::Leaf { keys, vals, .. } => {
                7 + keys
                    .iter()
                    .zip(vals)
                    .map(|(k, v)| 4 + k.len() + v.entry_len())
                    .sum::<usize>()
            }
            Node::Internal { keys, .. } => 7 + keys.iter().map(|k| 6 + k.len()).sum::<usize>(),
        }
    }

    fn to_page(&self) -> Page {
        let mut page = Page::zeroed();
        match self {
            Node::Leaf { keys, vals, next } => {
                page.put_u8(0, T_LEAF);
                page.put_u16(1, keys.len() as u16);
                page.put_u32(3, *next);
                let mut off = 7;
                for (k, v) in keys.iter().zip(vals) {
                    page.put_u16(off, k.len() as u16);
                    match v {
                        ValRef::Inline(bytes) => {
                            page.put_u16(off + 2, bytes.len() as u16);
                            page.put_slice(off + 4, k);
                            page.put_slice(off + 4 + k.len(), bytes);
                            off += 4 + k.len() + bytes.len();
                        }
                        ValRef::Overflow { head, len } => {
                            page.put_u16(off + 2, 0x8000);
                            page.put_slice(off + 4, k);
                            page.put_u32(off + 4 + k.len(), *head);
                            page.put_u32(off + 8 + k.len(), *len);
                            off += 4 + k.len() + 8;
                        }
                    }
                }
            }
            Node::Internal { keys, children } => {
                page.put_u8(0, T_INTERNAL);
                page.put_u16(1, keys.len() as u16);
                page.put_u32(3, children[0]);
                let mut off = 7;
                for (k, child) in keys.iter().zip(&children[1..]) {
                    page.put_u16(off, k.len() as u16);
                    page.put_slice(off + 2, k);
                    page.put_u32(off + 2 + k.len(), *child);
                    off += 6 + k.len();
                }
            }
        }
        page
    }

    fn from_page(page: &Page) -> Result<Node> {
        match page.get_u8(0) {
            T_LEAF => {
                let n = page.get_u16(1) as usize;
                let next = page.get_u32(3);
                let mut keys = Vec::with_capacity(n);
                let mut vals = Vec::with_capacity(n);
                let mut off = 7;
                for _ in 0..n {
                    let klen = page.get_u16(off) as usize;
                    let vmark = page.get_u16(off + 2);
                    let key = page.get_slice(off + 4, klen).to_vec();
                    if vmark & 0x8000 != 0 {
                        let head = page.get_u32(off + 4 + klen);
                        let len = page.get_u32(off + 8 + klen);
                        vals.push(ValRef::Overflow { head, len });
                        off += 4 + klen + 8;
                    } else {
                        let vlen = vmark as usize;
                        vals.push(ValRef::Inline(
                            page.get_slice(off + 4 + klen, vlen).to_vec(),
                        ));
                        off += 4 + klen + vlen;
                    }
                    keys.push(key);
                }
                Ok(Node::Leaf { keys, vals, next })
            }
            T_INTERNAL => {
                let n = page.get_u16(1) as usize;
                let mut keys = Vec::with_capacity(n);
                let mut children = Vec::with_capacity(n + 1);
                children.push(page.get_u32(3));
                let mut off = 7;
                for _ in 0..n {
                    let klen = page.get_u16(off) as usize;
                    keys.push(page.get_slice(off + 2, klen).to_vec());
                    children.push(page.get_u32(off + 2 + klen));
                    off += 6 + klen;
                }
                Ok(Node::Internal { keys, children })
            }
            other => Err(StorageError::Corrupt(format!("unknown node type {other}"))),
        }
    }
}

/// An on-disk B+Tree over one database file.
#[derive(Debug)]
pub struct BTree {
    pool: BufferPool,
    root: PageId,
    count: u64,
}

impl BTree {
    /// Create a fresh tree, truncating any existing file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        let pager = Pager::create(path)?;
        let pool = BufferPool::new(pager);
        let root = pool.allocate()?;
        let leaf = Node::Leaf {
            keys: vec![],
            vals: vec![],
            next: NO_PAGE,
        };
        pool.put(root, leaf.to_page())?;
        pool.with_pager(|p| {
            p.set_root_a(root);
            p.set_root_b(0); // entry count (low 32 bits)
        });
        Ok(BTree {
            pool,
            root,
            count: 0,
        })
    }

    /// Open an existing tree.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let pager = Pager::open(path)?;
        let pool = BufferPool::new(pager);
        let (root, count) = pool.with_pager(|p| (p.root_a(), p.root_b() as u64));
        if root == NO_PAGE {
            return Err(StorageError::BadHeader("file has no B+Tree root".into()));
        }
        Ok(BTree { pool, root, count })
    }

    /// Number of live entries.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// On-disk footprint in bytes.
    pub fn byte_size(&self) -> u64 {
        self.pool.with_pager(|p| p.byte_size())
    }

    /// Flush dirty pages and the header, then fsync.
    pub fn flush(&mut self) -> Result<()> {
        let (root, count) = (self.root, self.count);
        self.pool.with_pager(|p| {
            p.set_root_a(root);
            p.set_root_b(count as u32);
        });
        self.pool.flush()
    }

    fn load(&self, id: PageId) -> Result<Node> {
        Node::from_page(&self.pool.get(id)?)
    }

    fn store(&self, id: PageId, node: &Node) -> Result<()> {
        self.pool.put(id, node.to_page())
    }

    // ---- overflow chains ----

    fn write_overflow(&self, value: &[u8]) -> Result<(PageId, u32)> {
        let mut chunks: Vec<&[u8]> = value.chunks(OVERFLOW_CAP).collect();
        if chunks.is_empty() {
            chunks.push(&[]);
        }
        let mut next = NO_PAGE;
        // Write back-to-front so each page can point at its successor.
        for chunk in chunks.iter().rev() {
            let id = self.pool.allocate()?;
            let mut page = Page::zeroed();
            page.put_u8(0, T_OVERFLOW);
            page.put_u32(1, next);
            page.put_u16(5, chunk.len() as u16);
            page.put_slice(7, chunk);
            self.pool.put(id, page)?;
            next = id;
        }
        Ok((next, value.len() as u32))
    }

    fn read_overflow(&self, head: PageId, len: u32) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(len as usize);
        let mut cur = head;
        while cur != NO_PAGE {
            let page = self.pool.get(cur)?;
            if page.get_u8(0) != T_OVERFLOW {
                return Err(StorageError::Corrupt(
                    "overflow chain hit non-overflow page".into(),
                ));
            }
            let n = page.get_u16(5) as usize;
            out.extend_from_slice(page.get_slice(7, n));
            cur = page.get_u32(1);
        }
        if out.len() != len as usize {
            return Err(StorageError::Corrupt(format!(
                "overflow chain length {} != recorded {}",
                out.len(),
                len
            )));
        }
        Ok(out)
    }

    fn free_overflow(&self, head: PageId) -> Result<()> {
        let mut cur = head;
        while cur != NO_PAGE {
            let page = self.pool.get(cur)?;
            let next = page.get_u32(1);
            self.pool.free(cur)?;
            cur = next;
        }
        Ok(())
    }

    fn resolve(&self, v: &ValRef) -> Result<Vec<u8>> {
        match v {
            ValRef::Inline(bytes) => Ok(bytes.clone()),
            ValRef::Overflow { head, len } => self.read_overflow(*head, *len),
        }
    }

    fn make_valref(&self, value: &[u8]) -> Result<ValRef> {
        if value.len() <= MAX_INLINE_VALUE {
            Ok(ValRef::Inline(value.to_vec()))
        } else {
            let (head, len) = self.write_overflow(value)?;
            Ok(ValRef::Overflow { head, len })
        }
    }

    // ---- point operations ----

    /// Insert or replace the value for `key`. Returns `true` when the key
    /// was new.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<bool> {
        if key.len() > MAX_KEY {
            return Err(StorageError::EntryTooLarge {
                size: key.len(),
                max: MAX_KEY,
            });
        }
        let (inserted, split) = self.insert_rec(self.root, key, value)?;
        if let Some((sep, right)) = split {
            let new_root_id = self.pool.allocate()?;
            let new_root = Node::Internal {
                keys: vec![sep],
                children: vec![self.root, right],
            };
            self.store(new_root_id, &new_root)?;
            self.root = new_root_id;
        }
        if inserted {
            self.count += 1;
        }
        Ok(inserted)
    }

    /// Recursive insert; returns (was_new, optional split).
    fn insert_rec(
        &mut self,
        id: PageId,
        key: &[u8],
        value: &[u8],
    ) -> Result<(bool, Option<Split>)> {
        let mut node = self.load(id)?;
        match &mut node {
            Node::Leaf {
                keys,
                vals,
                next: _,
            } => {
                let val = self.make_valref(value)?;
                let was_new = match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                    Ok(pos) => {
                        // Replace: free any old overflow chain first.
                        if let ValRef::Overflow { head, .. } = vals[pos] {
                            self.free_overflow(head)?;
                        }
                        vals[pos] = val;
                        false
                    }
                    Err(pos) => {
                        keys.insert(pos, key.to_vec());
                        vals.insert(pos, val);
                        true
                    }
                };
                if node.serialized_size() <= PAGE_PAYLOAD {
                    self.store(id, &node)?;
                    return Ok((was_new, None));
                }
                // Split the leaf in half; right half moves to a new page.
                let (sep, right_id) = {
                    let Node::Leaf { keys, vals, next } = &mut node else {
                        unreachable!()
                    };
                    let mid = keys.len() / 2;
                    let right_keys = keys.split_off(mid);
                    let right_vals = vals.split_off(mid);
                    let sep = right_keys[0].clone();
                    let right_id = self.pool.allocate()?;
                    let right = Node::Leaf {
                        keys: right_keys,
                        vals: right_vals,
                        next: *next,
                    };
                    *next = right_id;
                    self.store(right_id, &right)?;
                    (sep, right_id)
                };
                self.store(id, &node)?;
                Ok((was_new, Some((sep, right_id))))
            }
            Node::Internal { keys, children } => {
                let child_idx = match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                    Ok(pos) => pos + 1,
                    Err(pos) => pos,
                };
                let child = children[child_idx];
                let (was_new, split) = self.insert_rec(child, key, value)?;
                if let Some((sep, right)) = split {
                    keys.insert(child_idx, sep);
                    children.insert(child_idx + 1, right);
                    if node.serialized_size() <= PAGE_PAYLOAD {
                        self.store(id, &node)?;
                        return Ok((was_new, None));
                    }
                    // Split the internal node; middle key is promoted.
                    let (sep, right_id) = {
                        let Node::Internal { keys, children } = &mut node else {
                            unreachable!()
                        };
                        let mid = keys.len() / 2;
                        let promoted = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // remove the promoted key from the left node
                        let right_children = children.split_off(mid + 1);
                        let right_id = self.pool.allocate()?;
                        let right = Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        };
                        self.store(right_id, &right)?;
                        (promoted, right_id)
                    };
                    self.store(id, &node)?;
                    return Ok((was_new, Some((sep, right_id))));
                }
                self.store(id, &node)?;
                Ok((was_new, None))
            }
        }
    }

    /// Look up the value stored for `key`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut id = self.root;
        loop {
            match self.load(id)? {
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                        Ok(pos) => pos + 1,
                        Err(pos) => pos,
                    };
                    id = children[idx];
                }
                Node::Leaf { keys, vals, .. } => {
                    return match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                        Ok(pos) => Ok(Some(self.resolve(&vals[pos])?)),
                        Err(_) => Ok(None),
                    };
                }
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u8]) -> Result<bool> {
        Ok(self.get(key)?.is_some())
    }

    /// Remove `key`. Returns `true` when it existed. Leaves may underflow
    /// (lazy deletion); space is reclaimed only for overflow chains.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        let mut id = self.root;
        loop {
            let mut node = self.load(id)?;
            match &mut node {
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                        Ok(pos) => pos + 1,
                        Err(pos) => pos,
                    };
                    id = children[idx];
                }
                Node::Leaf { keys, vals, .. } => {
                    match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                        Ok(pos) => {
                            keys.remove(pos);
                            if let ValRef::Overflow { head, .. } = vals.remove(pos) {
                                self.free_overflow(head)?;
                            }
                            self.store(id, &node)?;
                            self.count -= 1;
                            return Ok(true);
                        }
                        Err(_) => return Ok(false),
                    }
                }
            }
        }
    }

    // ---- range scans ----

    /// Find the leftmost leaf whose range may contain `start`.
    fn descend_to_leaf(&self, start: Bound<&[u8]>) -> Result<PageId> {
        let target: Option<&[u8]> = match start {
            Bound::Included(k) | Bound::Excluded(k) => Some(k),
            Bound::Unbounded => None,
        };
        let mut id = self.root;
        loop {
            match self.load(id)? {
                Node::Internal { keys, children } => {
                    let idx = match target {
                        None => 0,
                        Some(k) => match keys.binary_search_by(|s| s.as_slice().cmp(k)) {
                            Ok(pos) => pos + 1,
                            Err(pos) => pos,
                        },
                    };
                    id = children[idx];
                }
                Node::Leaf { .. } => return Ok(id),
            }
        }
    }

    /// Ordered scan over `[start, end]` bounds. Entries stream leaf-by-leaf.
    pub fn scan(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> Result<Scan<'_>> {
        let leaf = self.descend_to_leaf(start)?;
        let node = self.load(leaf)?;
        let (keys, vals, next) = match node {
            Node::Leaf { keys, vals, next } => (keys, vals, next),
            _ => {
                return Err(StorageError::Corrupt(
                    "descend ended on internal node".into(),
                ))
            }
        };
        let start_owned = match start {
            Bound::Included(k) => Bound::Included(k.to_vec()),
            Bound::Excluded(k) => Bound::Excluded(k.to_vec()),
            Bound::Unbounded => Bound::Unbounded,
        };
        let end_owned = match end {
            Bound::Included(k) => Bound::Included(k.to_vec()),
            Bound::Excluded(k) => Bound::Excluded(k.to_vec()),
            Bound::Unbounded => Bound::Unbounded,
        };
        let idx = match &start_owned {
            Bound::Unbounded => 0,
            Bound::Included(k) => keys.partition_point(|x| x.as_slice() < k.as_slice()),
            Bound::Excluded(k) => keys.partition_point(|x| x.as_slice() <= k.as_slice()),
        };
        Ok(Scan {
            tree: self,
            keys,
            vals,
            next,
            idx,
            end: end_owned,
            done: false,
        })
    }

    /// Scan every entry in key order.
    pub fn scan_all(&self) -> Result<Scan<'_>> {
        self.scan(Bound::Unbounded, Bound::Unbounded)
    }

    /// Collect all entries of a (potentially large) range into memory.
    pub fn range_vec(
        &self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan(start, end)?.collect()
    }

    /// Tree height (number of levels), for diagnostics and cost models.
    pub fn height(&self) -> Result<u32> {
        let mut h = 1;
        let mut id = self.root;
        loop {
            match self.load(id)? {
                Node::Internal { children, .. } => {
                    id = children[0];
                    h += 1;
                }
                Node::Leaf { .. } => return Ok(h),
            }
        }
    }
}

/// Streaming ordered scan over a [`BTree`]. Yields owned `(key, value)` pairs.
pub struct Scan<'a> {
    tree: &'a BTree,
    keys: Vec<Vec<u8>>,
    vals: Vec<ValRef>,
    next: PageId,
    idx: usize,
    end: Bound<Vec<u8>>,
    done: bool,
}

impl Iterator for Scan<'_> {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            if self.idx >= self.keys.len() {
                if self.next == NO_PAGE {
                    self.done = true;
                    return None;
                }
                match self.tree.load(self.next) {
                    Ok(Node::Leaf { keys, vals, next }) => {
                        self.keys = keys;
                        self.vals = vals;
                        self.next = next;
                        self.idx = 0;
                        continue;
                    }
                    Ok(_) => {
                        self.done = true;
                        return Some(Err(StorageError::Corrupt(
                            "leaf sibling points at internal node".into(),
                        )));
                    }
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                }
            }
            let key = &self.keys[self.idx];
            let past_end = match &self.end {
                Bound::Unbounded => false,
                Bound::Included(e) => key.as_slice() > e.as_slice(),
                Bound::Excluded(e) => key.as_slice() >= e.as_slice(),
            };
            if past_end {
                self.done = true;
                return None;
            }
            let val = match self.tree.resolve(&self.vals[self.idx]) {
                Ok(v) => v,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            };
            let key = key.clone();
            self.idx += 1;
            return Some(Ok((key, val)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("deeplens-btree-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.dlb", std::process::id()));
        std::fs::remove_file(&p).ok();
        p
    }

    #[test]
    fn insert_get_small() {
        let path = tmpfile("small");
        let mut t = BTree::create(&path).unwrap();
        assert!(t.insert(b"b", b"2").unwrap());
        assert!(t.insert(b"a", b"1").unwrap());
        assert!(t.insert(b"c", b"3").unwrap());
        assert!(!t.insert(b"b", b"2x").unwrap(), "replace is not an insert");
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(t.get(b"b").unwrap(), Some(b"2x".to_vec()));
        assert_eq!(t.get(b"zzz").unwrap(), None);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn thousands_of_keys_split_and_order() {
        let path = tmpfile("many");
        let mut t = BTree::create(&path).unwrap();
        let n = 5000u64;
        // Insert in a scrambled order.
        for i in 0..n {
            let k = (i * 2654435761) % n;
            t.insert(&keys::encode_u64(k), format!("val-{k}").as_bytes())
                .unwrap();
        }
        assert_eq!(t.len(), n);
        assert!(t.height().unwrap() >= 2, "tree should have split");
        // Every key resolves.
        for k in [0u64, 1, n / 2, n - 1] {
            assert_eq!(
                t.get(&keys::encode_u64(k)).unwrap(),
                Some(format!("val-{k}").into_bytes())
            );
        }
        // Full scan is ordered and complete.
        let all: Vec<_> = t.scan_all().unwrap().collect::<Result<_>>().unwrap();
        assert_eq!(all.len(), n as usize);
        for (i, (k, _)) in all.iter().enumerate() {
            assert_eq!(keys::decode_u64(k), i as u64);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn range_scan_bounds() {
        let path = tmpfile("range");
        let mut t = BTree::create(&path).unwrap();
        for i in 0..100u64 {
            t.insert(&keys::encode_u64(i), &[i as u8]).unwrap();
        }
        let lo = keys::encode_u64(10);
        let hi = keys::encode_u64(20);
        let r: Vec<_> = t
            .scan(Bound::Included(&lo), Bound::Excluded(&hi))
            .unwrap()
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(r.len(), 10);
        assert_eq!(keys::decode_u64(&r[0].0), 10);
        assert_eq!(keys::decode_u64(&r[9].0), 19);

        let r2: Vec<_> = t
            .scan(Bound::Excluded(&lo), Bound::Included(&hi))
            .unwrap()
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(keys::decode_u64(&r2[0].0), 11);
        assert_eq!(keys::decode_u64(&r2.last().unwrap().0), 20);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn large_values_use_overflow() {
        let path = tmpfile("overflow");
        let mut t = BTree::create(&path).unwrap();
        let big: Vec<u8> = (0..50_000).map(|i| (i % 251) as u8).collect();
        t.insert(b"frame", &big).unwrap();
        t.insert(b"tiny", b"x").unwrap();
        assert_eq!(t.get(b"frame").unwrap(), Some(big.clone()));
        // Replacing a big value frees and rewrites the chain.
        let big2: Vec<u8> = (0..30_000).map(|i| (i % 13) as u8).collect();
        t.insert(b"frame", &big2).unwrap();
        assert_eq!(t.get(b"frame").unwrap(), Some(big2));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn delete_and_reinsert() {
        let path = tmpfile("delete");
        let mut t = BTree::create(&path).unwrap();
        for i in 0..500u64 {
            t.insert(&keys::encode_u64(i), b"v").unwrap();
        }
        for i in (0..500u64).step_by(2) {
            assert!(t.delete(&keys::encode_u64(i)).unwrap());
        }
        assert!(!t.delete(&keys::encode_u64(0)).unwrap(), "double delete");
        assert_eq!(t.len(), 250);
        assert_eq!(t.get(&keys::encode_u64(2)).unwrap(), None);
        assert!(t.get(&keys::encode_u64(3)).unwrap().is_some());
        // Reinsert over the holes.
        for i in (0..500u64).step_by(2) {
            assert!(t.insert(&keys::encode_u64(i), b"w").unwrap());
        }
        assert_eq!(t.len(), 500);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn persistence_across_reopen() {
        let path = tmpfile("persist");
        {
            let mut t = BTree::create(&path).unwrap();
            for i in 0..1000u64 {
                t.insert(&keys::encode_u64(i), format!("{i}").as_bytes())
                    .unwrap();
            }
            t.flush().unwrap();
        }
        let t = BTree::open(&path).unwrap();
        assert_eq!(t.len(), 1000);
        assert_eq!(
            t.get(&keys::encode_u64(999)).unwrap(),
            Some(b"999".to_vec())
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn oversize_key_rejected() {
        let path = tmpfile("bigkey");
        let mut t = BTree::create(&path).unwrap();
        let k = vec![0u8; MAX_KEY + 1];
        assert!(matches!(
            t.insert(&k, b"v"),
            Err(StorageError::EntryTooLarge { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_scan() {
        let path = tmpfile("empty");
        let t = BTree::create(&path).unwrap();
        assert_eq!(t.scan_all().unwrap().count(), 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn key_codecs_preserve_order() {
        let us = [0u64, 1, 255, 256, u32::MAX as u64, u64::MAX];
        for w in us.windows(2) {
            assert!(keys::encode_u64(w[0]) < keys::encode_u64(w[1]));
            assert_eq!(keys::decode_u64(&keys::encode_u64(w[0])), w[0]);
        }
        let is = [i64::MIN, -5, -1, 0, 1, 5, i64::MAX];
        for w in is.windows(2) {
            assert!(keys::encode_i64(w[0]) < keys::encode_i64(w[1]));
            assert_eq!(keys::decode_i64(&keys::encode_i64(w[0])), w[0]);
        }
        let fs = [-1e30f64, -1.0, -1e-10, 0.0, 1e-10, 1.0, 1e30];
        for w in fs.windows(2) {
            assert!(keys::encode_f64(w[0]) < keys::encode_f64(w[1]));
            assert_eq!(keys::decode_f64(&keys::encode_f64(w[0])), w[0]);
        }
    }
}
