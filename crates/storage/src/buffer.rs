//! LRU buffer pool between the access methods and the pager.
//!
//! The pool caches page images, absorbs repeated reads during tree descents,
//! and defers writes until eviction or an explicit flush. Interior mutability
//! through a [`parking_lot::Mutex`] lets the access methods share one pool.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::page::{Page, PageId};
use crate::pager::Pager;
use crate::Result;

/// Default number of cached pages (1 MiB of 4 KiB pages plus metadata).
pub const DEFAULT_CAPACITY: usize = 256;

#[derive(Debug)]
struct Slot {
    page: Page,
    dirty: bool,
    last_used: u64,
}

#[derive(Debug)]
struct Inner {
    pager: Pager,
    slots: HashMap<PageId, Slot>,
    tick: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
}

/// A buffer pool over a [`Pager`].
#[derive(Debug)]
pub struct BufferPool {
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Wrap a pager with the default capacity.
    pub fn new(pager: Pager) -> Self {
        Self::with_capacity(pager, DEFAULT_CAPACITY)
    }

    /// Wrap a pager with an explicit page capacity (minimum 8).
    pub fn with_capacity(pager: Pager, capacity: usize) -> Self {
        BufferPool {
            inner: Mutex::new(Inner {
                pager,
                slots: HashMap::new(),
                tick: 0,
                capacity: capacity.max(8),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Fetch a page image (from cache or disk).
    pub fn get(&self, id: PageId) -> Result<Page> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.slots.get_mut(&id) {
            slot.last_used = tick;
            let page = slot.page.clone();
            inner.hits += 1;
            return Ok(page);
        }
        inner.misses += 1;
        let page = inner.pager.read_page(id)?;
        inner.insert_slot(id, page.clone(), false)?;
        Ok(page)
    }

    /// Install a (possibly new) page image and mark it dirty.
    pub fn put(&self, id: PageId, page: Page) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.slots.get_mut(&id) {
            slot.page = page;
            slot.dirty = true;
            slot.last_used = tick;
            return Ok(());
        }
        inner.insert_slot(id, page, true)
    }

    /// Allocate a fresh page id from the pager.
    pub fn allocate(&self) -> Result<PageId> {
        self.inner.lock().pager.allocate()
    }

    /// Free a page, dropping any cached copy.
    pub fn free(&self, id: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.slots.remove(&id);
        inner.pager.free(id)
    }

    /// Run a closure against the underlying pager (root pointers, stats).
    pub fn with_pager<T>(&self, f: impl FnOnce(&mut Pager) -> T) -> T {
        f(&mut self.inner.lock().pager)
    }

    /// Write all dirty pages back and sync the file.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let dirty: Vec<PageId> = inner
            .slots
            .iter()
            .filter(|(_, s)| s.dirty)
            .map(|(id, _)| *id)
            .collect();
        for id in dirty {
            let page = inner.slots[&id].page.clone();
            inner.pager.write_page(id, &page)?;
            inner.slots.get_mut(&id).expect("slot present").dirty = false;
        }
        inner.pager.sync()
    }

    /// `(hits, misses)` counters since creation.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }
}

impl Inner {
    fn insert_slot(&mut self, id: PageId, page: Page, dirty: bool) -> Result<()> {
        while self.slots.len() >= self.capacity {
            // Evict the least-recently-used slot; write back if dirty.
            let victim = self
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(id, _)| *id)
                .expect("non-empty map");
            let slot = self.slots.remove(&victim).expect("victim present");
            if slot.dirty {
                self.pager.write_page(victim, &slot.page)?;
            }
        }
        self.tick += 1;
        self.slots.insert(
            id,
            Slot {
                page,
                dirty,
                last_used: self.tick,
            },
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("deeplens-buffer-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.dlp", std::process::id()))
    }

    #[test]
    fn cached_reads_hit() {
        let path = tmpfile("hits");
        let mut pager = Pager::create(&path).unwrap();
        let id = pager.allocate().unwrap();
        let pool = BufferPool::new(pager);
        pool.get(id).unwrap();
        pool.get(id).unwrap();
        let (hits, misses) = pool.stats();
        assert_eq!((hits, misses), (1, 1));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn dirty_pages_survive_eviction() {
        let path = tmpfile("evict");
        let pager = Pager::create(&path).unwrap();
        let pool = BufferPool::with_capacity(pager, 8);
        // Write 32 distinct pages through a pool of capacity 8.
        let ids: Vec<PageId> = (0..32).map(|_| pool.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let mut page = Page::zeroed();
            page.put_u32(0, i as u32 * 31 + 7);
            pool.put(id, page).unwrap();
        }
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(pool.get(id).unwrap().get_u32(0), i as u32 * 31 + 7);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn flush_persists_to_reopened_file() {
        let path = tmpfile("flush");
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::new(pager);
            let id = pool.allocate().unwrap();
            let mut page = Page::zeroed();
            page.put_slice(0, b"durable");
            pool.put(id, page).unwrap();
            pool.with_pager(|p| p.set_root_a(id));
            pool.flush().unwrap();
        }
        let mut pager = Pager::open(&path).unwrap();
        let root = pager.root_a();
        assert_eq!(pager.read_page(root).unwrap().get_slice(0, 7), b"durable");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn free_drops_cache_entry() {
        let path = tmpfile("free");
        let pager = Pager::create(&path).unwrap();
        let pool = BufferPool::new(pager);
        let id = pool.allocate().unwrap();
        let mut page = Page::zeroed();
        page.put_u32(0, 1);
        pool.put(id, page).unwrap();
        pool.free(id).unwrap();
        let id2 = pool.allocate().unwrap();
        assert_eq!(id2, id, "freed page reused through the pool");
        std::fs::remove_file(path).ok();
    }
}
