//! Sharded LRU buffer pool between the access methods and the pager.
//!
//! The pool caches page images, absorbs repeated reads during tree descents,
//! and defers writes until eviction or an explicit flush. The slot map is
//! split across [`DEFAULT_SHARDS`] shards keyed by page id, each behind its
//! own ranked `OrderedRwLock`, with a reader/writer page-access protocol:
//!
//! * **reads** ([`BufferPool::get`]) probe their shard under a *read* latch
//!   — concurrent scans over distinct pages (and even the same page) never
//!   serialize on a cache hit; LRU bookkeeping rides on per-slot atomics so
//!   the read latch really is shared;
//! * **writes** ([`BufferPool::put`], misses, [`BufferPool::free`]) take
//!   only their shard's write latch — traffic on other shards proceeds;
//! * the underlying [`Pager`] (file I/O, allocation) stays behind one mutex.
//!
//! **Latch ordering**: shard latch before pager mutex, always — in
//! [`LockRank`] terms, `BufferShard` < `Pager`, the single source of truth
//! checked at runtime under `debug_assertions`. A dirty eviction write-back
//! acquires the pager while holding its shard; nothing ever acquires a shard
//! latch while holding the pager, and no operation holds two `BufferShard`
//! latches at once (the checker rejects a second same-rank acquisition) — so
//! the pool is deadlock-free.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use deeplens_analyze::sync::{LockRank, OrderedMutex, OrderedRwLock};

use crate::page::{Page, PageId};
use crate::pager::Pager;
use crate::Result;

/// Default number of cached pages (1 MiB of 4 KiB pages plus metadata).
pub const DEFAULT_CAPACITY: usize = 256;

/// Default number of latch shards the slot map is split across.
pub const DEFAULT_SHARDS: usize = 8;

#[derive(Debug)]
struct Slot {
    page: Page,
    dirty: bool,
    /// Atomic so cache hits can bump recency under the shared read latch.
    last_used: AtomicU64,
}

#[derive(Debug, Default)]
struct Shard {
    slots: HashMap<PageId, Slot>,
}

/// A sharded buffer pool over a [`Pager`].
#[derive(Debug)]
pub struct BufferPool {
    shards: Vec<OrderedRwLock<Shard>>,
    /// Per-shard slot capacity (total capacity divided across shards).
    shard_capacity: usize,
    pager: OrderedMutex<Pager>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// Wrap a pager with the default capacity.
    pub fn new(pager: Pager) -> Self {
        Self::with_capacity(pager, DEFAULT_CAPACITY)
    }

    /// Wrap a pager with an explicit total page capacity (minimum 8),
    /// split across [`DEFAULT_SHARDS`] shards.
    pub fn with_capacity(pager: Pager, capacity: usize) -> Self {
        Self::with_capacity_and_shards(pager, capacity, DEFAULT_SHARDS)
    }

    /// Wrap a pager with explicit capacity and shard count (minimum 1
    /// shard, at least one slot per shard). The per-shard budget is
    /// `⌈capacity / shards⌉`, so the effective total rounds up by at most
    /// `shards − 1` slots, and a shard never caches more than its own
    /// share even when page ids skew toward it.
    pub fn with_capacity_and_shards(pager: Pager, capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let shard_capacity = (capacity.max(8)).div_ceil(shards).max(1);
        BufferPool {
            shards: (0..shards)
                .map(|_| {
                    OrderedRwLock::new(
                        LockRank::BufferShard,
                        "BufferPool::shards",
                        Shard::default(),
                    )
                })
                .collect(),
            shard_capacity,
            pager: OrderedMutex::new(LockRank::Pager, "BufferPool::pager", pager),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of latch shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, id: PageId) -> &OrderedRwLock<Shard> {
        &self.shards[id as usize % self.shards.len()]
    }

    #[inline]
    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Fetch a page image (from cache or disk).
    ///
    /// The hit path holds only a shard *read* latch: concurrent scans on
    /// cached pages never block each other.
    pub fn get(&self, id: PageId) -> Result<Page> {
        let tick = self.next_tick();
        let shard = self.shard_of(id);
        {
            let s = shard.read();
            if let Some(slot) = s.slots.get(&id) {
                slot.last_used.store(tick, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(slot.page.clone());
            }
        }
        // Miss path: upgrade to the shard's write latch and hold it across
        // the disk read + install. Reading off-latch would be faster for
        // the faulting thread but unsound: a concurrent put + eviction (or
        // a free) could land between the read and the install, and the
        // stale pre-put image would then be cached clean, shadowing the
        // newer bytes already written back to disk. Faults therefore
        // serialize per shard; hits on this and every other shard stay
        // shared.
        let mut s = shard.write();
        // Another miss may have installed the page while we waited — that
        // is a cache hit, not a second disk read, so count it as one.
        if let Some(slot) = s.slots.get(&id) {
            slot.last_used.store(tick, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(slot.page.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let page = self.pager.lock().read_page(id)?;
        self.insert_slot(&mut s, id, page.clone(), false, tick)?;
        Ok(page)
    }

    /// Install a (possibly new) page image and mark it dirty.
    pub fn put(&self, id: PageId, page: Page) -> Result<()> {
        let tick = self.next_tick();
        let mut s = self.shard_of(id).write();
        if let Some(slot) = s.slots.get_mut(&id) {
            slot.page = page;
            slot.dirty = true;
            slot.last_used.store(tick, Ordering::Relaxed);
            return Ok(());
        }
        self.insert_slot(&mut s, id, page, true, tick)
    }

    /// Allocate a fresh page id from the pager.
    pub fn allocate(&self) -> Result<PageId> {
        self.pager.lock().allocate()
    }

    /// Free a page, dropping any cached copy. The shard latch is held
    /// across the pager free; together with [`BufferPool::get`]'s
    /// read-under-write-latch fault protocol, no in-flight miss can
    /// re-cache a freed page's stale image afterwards.
    pub fn free(&self, id: PageId) -> Result<()> {
        let mut s = self.shard_of(id).write();
        s.slots.remove(&id);
        self.pager.lock().free(id)
    }

    /// Run a closure against the underlying pager (root pointers, stats).
    pub fn with_pager<T>(&self, f: impl FnOnce(&mut Pager) -> T) -> T {
        f(&mut self.pager.lock())
    }

    /// Write all dirty pages back and sync the file. Shards are drained one
    /// at a time (one latch held at once); pages dirtied behind the sweep
    /// by concurrent writers simply stay dirty for the next flush.
    pub fn flush(&self) -> Result<()> {
        for shard in &self.shards {
            let mut s = shard.write();
            let dirty: Vec<PageId> = s
                .slots
                .iter()
                .filter(|(_, slot)| slot.dirty)
                .map(|(id, _)| *id)
                .collect();
            if dirty.is_empty() {
                continue;
            }
            let mut pager = self.pager.lock();
            for id in dirty {
                let slot = s.slots.get_mut(&id).expect("slot present");
                pager.write_page(id, &slot.page)?;
                slot.dirty = false;
            }
        }
        self.pager.lock().sync()
    }

    /// `(hits, misses)` counters since creation.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Insert into a write-latched shard, evicting LRU victims past the
    /// per-shard capacity (dirty victims are written back through the
    /// pager; shard latch → pager mutex is the global lock order).
    fn insert_slot(
        &self,
        shard: &mut Shard,
        id: PageId,
        page: Page,
        dirty: bool,
        tick: u64,
    ) -> Result<()> {
        while shard.slots.len() >= self.shard_capacity {
            let victim = shard
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
                .map(|(id, _)| *id)
                .expect("non-empty map");
            let slot = shard.slots.remove(&victim).expect("victim present");
            if slot.dirty {
                self.pager.lock().write_page(victim, &slot.page)?;
            }
        }
        shard.slots.insert(
            id,
            Slot {
                page,
                dirty,
                last_used: AtomicU64::new(tick),
            },
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("deeplens-buffer-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.dlp", std::process::id()))
    }

    #[test]
    fn cached_reads_hit() {
        let path = tmpfile("hits");
        let mut pager = Pager::create(&path).unwrap();
        let id = pager.allocate().unwrap();
        let pool = BufferPool::new(pager);
        pool.get(id).unwrap();
        pool.get(id).unwrap();
        let (hits, misses) = pool.stats();
        assert_eq!((hits, misses), (1, 1));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn dirty_pages_survive_eviction() {
        let path = tmpfile("evict");
        let pager = Pager::create(&path).unwrap();
        let pool = BufferPool::with_capacity(pager, 8);
        // Write 32 distinct pages through a pool of total capacity 8.
        let ids: Vec<PageId> = (0..32).map(|_| pool.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let mut page = Page::zeroed();
            page.put_u32(0, i as u32 * 31 + 7);
            pool.put(id, page).unwrap();
        }
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(pool.get(id).unwrap().get_u32(0), i as u32 * 31 + 7);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn flush_persists_to_reopened_file() {
        let path = tmpfile("flush");
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::new(pager);
            let id = pool.allocate().unwrap();
            let mut page = Page::zeroed();
            page.put_slice(0, b"durable");
            pool.put(id, page).unwrap();
            pool.with_pager(|p| p.set_root_a(id));
            pool.flush().unwrap();
        }
        let mut pager = Pager::open(&path).unwrap();
        let root = pager.root_a();
        assert_eq!(pager.read_page(root).unwrap().get_slice(0, 7), b"durable");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn free_drops_cache_entry() {
        let path = tmpfile("free");
        let pager = Pager::create(&path).unwrap();
        let pool = BufferPool::new(pager);
        let id = pool.allocate().unwrap();
        let mut page = Page::zeroed();
        page.put_u32(0, 1);
        pool.put(id, page).unwrap();
        pool.free(id).unwrap();
        let id2 = pool.allocate().unwrap();
        assert_eq!(id2, id, "freed page reused through the pool");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn pages_spread_across_shards() {
        let path = tmpfile("shards");
        let pager = Pager::create(&path).unwrap();
        let pool = BufferPool::with_capacity_and_shards(pager, 64, 4);
        assert_eq!(pool.shard_count(), 4);
        // Sequential page ids hash round-robin across shards, so a window
        // of adjacent pages never piles onto one latch.
        let ids: Vec<PageId> = (0..16).map(|_| pool.allocate().unwrap()).collect();
        let mut seen = std::collections::HashSet::new();
        for &id in &ids {
            seen.insert(id as usize % pool.shard_count());
        }
        assert_eq!(seen.len(), 4, "all shards populated");
        for &id in &ids {
            let mut p = Page::zeroed();
            p.put_u32(0, id * 3 + 1);
            pool.put(id, p).unwrap();
        }
        for &id in &ids {
            assert_eq!(pool.get(id).unwrap().get_u32(0), id * 3 + 1);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn concurrent_hits_share_the_read_latch() {
        // Smoke for the reader protocol: many threads hammering cache hits
        // on the same pages must all see the right bytes (the stress
        // version lives in tests/buffer_concurrency.rs).
        let path = tmpfile("shared-reads");
        let pager = Pager::create(&path).unwrap();
        let pool = BufferPool::with_capacity(pager, 64);
        let ids: Vec<PageId> = (0..8)
            .map(|i| {
                let id = pool.allocate().unwrap();
                let mut p = Page::zeroed();
                p.put_u32(0, i * 7 + 5);
                pool.put(id, p).unwrap();
                id
            })
            .collect();
        std::thread::scope(|s| {
            for _ in 0..6 {
                s.spawn(|| {
                    for round in 0..50u32 {
                        for (i, &id) in ids.iter().enumerate() {
                            assert_eq!(
                                pool.get(id).unwrap().get_u32(0),
                                i as u32 * 7 + 5,
                                "round {round}"
                            );
                        }
                    }
                });
            }
        });
        let (hits, _) = pool.stats();
        assert!(hits >= 6 * 50 * 8, "every read after warmup is a hit");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn single_shard_pool_still_works() {
        let path = tmpfile("oneshard");
        let pager = Pager::create(&path).unwrap();
        let pool = BufferPool::with_capacity_and_shards(pager, 8, 1);
        assert_eq!(pool.shard_count(), 1);
        let id = pool.allocate().unwrap();
        let mut p = Page::zeroed();
        p.put_u32(0, 99);
        pool.put(id, p).unwrap();
        assert_eq!(pool.get(id).unwrap().get_u32(0), 99);
        std::fs::remove_file(path).ok();
    }
}
