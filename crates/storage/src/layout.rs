//! Video physical layouts: Frame File, Encoded File, Segmented File.
//!
//! These are the three storage formats of the paper's §3.1, behind one
//! [`VideoStore`] trait so the ETL layer (and the Fig. 2 / Fig. 3 harnesses)
//! can swap layouts without touching query code:
//!
//! * [`FrameFile`] — one record per frame in a B+Tree sorted by frame
//!   number; supports exact temporal filter pushdown. Frames are stored raw
//!   or individually intra-coded ("JPEG").
//! * [`EncodedFile`] — the whole video as a single sequential inter-coded
//!   stream; smallest on disk, but any access decodes from frame zero.
//! * [`SegmentedFile`] — fixed-length clips, each an independent sequential
//!   stream, keyed by start frame; coarse-grained pushdown plus most of the
//!   inter-coding win.
//!
//! [`StorageAdvisor`] implements the paper's future-work idea of picking a
//! layout from a workload description.

use std::ops::Bound;
use std::path::Path;

use deeplens_codec::video::{decode_video, encode_video, VideoConfig};
use deeplens_codec::{decode_image, encode_image, Image, Quality};

use crate::btree::{keys, BTree};
use crate::{Result, StorageError};

/// Per-frame storage format inside a [`FrameFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFormat {
    /// Raw interleaved RGB (the paper's "RAW" layout).
    Raw,
    /// Individually intra-coded frames (the paper's "JPEG" layout).
    Intra(Quality),
}

impl FrameFormat {
    /// Label used by the benchmark harnesses.
    pub fn label(&self) -> String {
        match self {
            FrameFormat::Raw => "RAW".into(),
            FrameFormat::Intra(q) => format!("JPEG-{}", q.label()),
        }
    }
}

/// Common interface over the three physical layouts.
pub trait VideoStore {
    /// Number of frames stored.
    fn frame_count(&self) -> u64;

    /// On-disk footprint in bytes.
    fn byte_size(&self) -> u64;

    /// Decode all frames with numbers in `[start, end)`.
    ///
    /// The work each layout performs here is exactly the paper's trade-off:
    /// Frame Files touch only the requested records, Encoded Files decode
    /// sequentially from frame zero, Segmented Files decode whole clips that
    /// overlap the range.
    fn scan_range(&mut self, start: u64, end: u64) -> Result<Vec<(u64, Image)>>;

    /// Human-readable layout label.
    fn label(&self) -> String;

    /// Number of frames the layout had to *decode* to answer the last
    /// `scan_range` (the pushdown-effectiveness metric of Fig. 3).
    fn last_decoded_frames(&self) -> u64;
}

// --------------------------------------------------------------------------
// Frame File
// --------------------------------------------------------------------------

/// One record per frame, sorted by frame number in a B+Tree.
#[derive(Debug)]
pub struct FrameFile {
    tree: BTree,
    format: FrameFormat,
    width: u32,
    height: u32,
    decoded: u64,
}

impl FrameFile {
    /// Ingest `frames` into a fresh Frame File at `path`.
    ///
    /// Raw payloads carry no shape of their own — the file header's
    /// width/height reconstructs every record — so a raw Frame File requires
    /// all frames to share the first frame's dimensions and rejects a mixed
    /// ingest with [`StorageError::DimensionMismatch`]. (Intra-coded frames
    /// embed their dimensions and may vary freely.)
    pub fn ingest<P: AsRef<Path>>(path: P, frames: &[Image], format: FrameFormat) -> Result<Self> {
        let (width, height) = frames
            .first()
            .map(|f| (f.width(), f.height()))
            .unwrap_or((0, 0));
        if format == FrameFormat::Raw {
            for (i, frame) in frames.iter().enumerate() {
                Self::check_raw_dims(width, height, frame, i as u64)?;
            }
        }
        let mut tree = BTree::create(path)?;
        for (i, frame) in frames.iter().enumerate() {
            let payload = match format {
                FrameFormat::Raw => frame.data().to_vec(),
                FrameFormat::Intra(q) => encode_image(frame, q),
            };
            tree.insert(&keys::encode_u64(i as u64), &payload)?;
        }
        tree.flush()?;
        Ok(FrameFile {
            tree,
            format,
            width,
            height,
            decoded: 0,
        })
    }

    /// Reject a raw-format frame whose shape differs from the file's fixed
    /// raster dimensions: `decode_payload` would otherwise reinterpret its
    /// bytes at the wrong stride and silently return garbage pixels.
    fn check_raw_dims(width: u32, height: u32, frame: &Image, frame_no: u64) -> Result<()> {
        if frame.width() != width || frame.height() != height {
            return Err(StorageError::DimensionMismatch {
                expected_w: width,
                expected_h: height,
                got_w: frame.width(),
                got_h: frame.height(),
                frame_no,
            });
        }
        Ok(())
    }

    /// Append one frame with the next frame number.
    ///
    /// Like [`FrameFile::ingest`], a raw-format append must match the file's
    /// fixed dimensions once any frame is stored.
    pub fn append(&mut self, frame: &Image) -> Result<u64> {
        if self.tree.is_empty() {
            self.width = frame.width();
            self.height = frame.height();
        } else if self.format == FrameFormat::Raw {
            Self::check_raw_dims(self.width, self.height, frame, self.tree.len())?;
        }
        let no = self.tree.len();
        let payload = match self.format {
            FrameFormat::Raw => frame.data().to_vec(),
            FrameFormat::Intra(q) => encode_image(frame, q),
        };
        self.tree.insert(&keys::encode_u64(no), &payload)?;
        Ok(no)
    }

    /// Fetch a single frame by number.
    pub fn get(&mut self, frame_no: u64) -> Result<Option<Image>> {
        match self.tree.get(&keys::encode_u64(frame_no))? {
            Some(bytes) => {
                self.decoded += 1;
                Ok(Some(self.decode_payload(&bytes)?))
            }
            None => Ok(None),
        }
    }

    fn decode_payload(&self, bytes: &[u8]) -> Result<Image> {
        match self.format {
            FrameFormat::Raw => {
                Image::from_rgb(self.width, self.height, bytes.to_vec()).map_err(StorageError::from)
            }
            FrameFormat::Intra(_) => decode_image(bytes).map_err(StorageError::from),
        }
    }
}

impl VideoStore for FrameFile {
    fn frame_count(&self) -> u64 {
        self.tree.len()
    }

    fn byte_size(&self) -> u64 {
        self.tree.byte_size()
    }

    fn scan_range(&mut self, start: u64, end: u64) -> Result<Vec<(u64, Image)>> {
        self.decoded = 0;
        let lo = keys::encode_u64(start);
        let hi = keys::encode_u64(end);
        let mut out = Vec::new();
        for entry in self.tree.scan(Bound::Included(&lo), Bound::Excluded(&hi))? {
            let (k, v) = entry?;
            out.push((keys::decode_u64(&k), self.decode_payload(&v)?));
            self.decoded += 1;
        }
        Ok(out)
    }

    fn label(&self) -> String {
        format!("FrameFile({})", self.format.label())
    }

    fn last_decoded_frames(&self) -> u64 {
        self.decoded
    }
}

// --------------------------------------------------------------------------
// Encoded File
// --------------------------------------------------------------------------

/// The whole video as one sequential inter-coded stream in a flat file.
#[derive(Debug)]
pub struct EncodedFile {
    bytes: Vec<u8>,
    frame_count: u64,
    decoded: u64,
}

impl EncodedFile {
    /// Encode `frames` sequentially and persist the stream to `path`.
    pub fn ingest<P: AsRef<Path>>(path: P, frames: &[Image], quality: Quality) -> Result<Self> {
        let bytes = encode_video(frames, VideoConfig::sequential(quality))?;
        std::fs::write(path.as_ref(), &bytes)?;
        Ok(EncodedFile {
            bytes,
            frame_count: frames.len() as u64,
            decoded: 0,
        })
    }

    /// Open a previously-ingested stream.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let bytes = std::fs::read(path.as_ref())?;
        let dec = deeplens_codec::video::VideoDecoder::new(&bytes)?;
        let frame_count = dec.header().frame_count as u64;
        Ok(EncodedFile {
            bytes,
            frame_count,
            decoded: 0,
        })
    }
}

impl VideoStore for EncodedFile {
    fn frame_count(&self) -> u64 {
        self.frame_count
    }

    fn byte_size(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn scan_range(&mut self, start: u64, end: u64) -> Result<Vec<(u64, Image)>> {
        // The codec is sequential: reaching frame `start` requires decoding
        // every preceding frame. This is the cost Fig. 3 measures.
        self.decoded = 0;
        // An empty or fully out-of-range request answers itself: decoding
        // the prefix would return nothing while still paying for every
        // frame below `end`.
        if start >= end || start >= self.frame_count {
            return Ok(vec![]);
        }
        let mut out = Vec::new();
        let mut dec = deeplens_codec::video::VideoDecoder::new(&self.bytes)?;
        for no in 0..end.min(self.frame_count) {
            match dec.next_frame() {
                Some(frame) => {
                    let frame = frame?;
                    self.decoded += 1;
                    if no >= start {
                        out.push((no, frame));
                    }
                }
                None => break,
            }
        }
        Ok(out)
    }

    fn label(&self) -> String {
        "EncodedFile(H264-like)".into()
    }

    fn last_decoded_frames(&self) -> u64 {
        self.decoded
    }
}

// --------------------------------------------------------------------------
// Segmented File
// --------------------------------------------------------------------------

/// Fixed-length encoded clips keyed by start frame in a B+Tree.
#[derive(Debug)]
pub struct SegmentedFile {
    tree: BTree,
    clip_len: u64,
    frame_count: u64,
    decoded: u64,
}

impl SegmentedFile {
    /// Segment `frames` into clips of `clip_len` and persist at `path`.
    ///
    /// A zero `clip_len` is rejected with [`StorageError::InvalidArgument`]:
    /// there is no zero-frame clip partitioning of a video.
    pub fn ingest<P: AsRef<Path>>(
        path: P,
        frames: &[Image],
        clip_len: u64,
        quality: Quality,
    ) -> Result<Self> {
        if clip_len == 0 {
            return Err(StorageError::InvalidArgument(
                "segmented layout clip length must be positive".to_string(),
            ));
        }
        let mut tree = BTree::create(path)?;
        for (ci, chunk) in frames.chunks(clip_len as usize).enumerate() {
            let clip = encode_video(chunk, VideoConfig::sequential(quality))?;
            tree.insert(&keys::encode_u64(ci as u64 * clip_len), &clip)?;
        }
        tree.flush()?;
        Ok(SegmentedFile {
            tree,
            clip_len,
            frame_count: frames.len() as u64,
            decoded: 0,
        })
    }

    /// Configured clip length in frames.
    pub fn clip_len(&self) -> u64 {
        self.clip_len
    }
}

impl VideoStore for SegmentedFile {
    fn frame_count(&self) -> u64 {
        self.frame_count
    }

    fn byte_size(&self) -> u64 {
        self.tree.byte_size()
    }

    fn scan_range(&mut self, start: u64, end: u64) -> Result<Vec<(u64, Image)>> {
        self.decoded = 0;
        let end = end.min(self.frame_count);
        if start >= end {
            return Ok(vec![]);
        }
        // Coarse pushdown: fetch only the clips overlapping [start, end),
        // but decode each overlapping clip in full (sequential inside).
        let first_clip = start - start % self.clip_len;
        let lo = keys::encode_u64(first_clip);
        let hi = keys::encode_u64(end);
        let mut out = Vec::new();
        for entry in self.tree.scan(Bound::Included(&lo), Bound::Excluded(&hi))? {
            let (k, clip_bytes) = entry?;
            let clip_start = keys::decode_u64(&k);
            let frames = decode_video(&clip_bytes)?;
            self.decoded += frames.len() as u64;
            for (i, frame) in frames.into_iter().enumerate() {
                let no = clip_start + i as u64;
                if no >= start && no < end {
                    out.push((no, frame));
                }
            }
        }
        Ok(out)
    }

    fn label(&self) -> String {
        format!("SegmentedFile(clip={})", self.clip_len)
    }

    fn last_decoded_frames(&self) -> u64 {
        self.decoded
    }
}

// --------------------------------------------------------------------------
// Storage advisor (paper §3, "Future Work: Storage Advisor")
// --------------------------------------------------------------------------

/// A workload description the advisor optimizes for.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadProfile {
    /// Total frames in the corpus.
    pub num_frames: u64,
    /// Raw bytes per frame.
    pub raw_frame_bytes: u64,
    /// Average fraction of the video a temporal-range query touches.
    pub temporal_selectivity: f64,
    /// Relative weight of storage cost vs. query latency in `[0, 1]`
    /// (1.0 = only storage matters).
    pub storage_weight: f64,
}

/// One candidate layout with its estimated costs.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutEstimate {
    /// Layout label.
    pub layout: String,
    /// Estimated on-disk footprint in bytes.
    pub storage_bytes: f64,
    /// Estimated decode work per query (arbitrary cost units).
    pub query_cost: f64,
    /// Combined weighted score (lower is better).
    pub score: f64,
}

/// Compression-ratio and decode-cost constants calibrated against this
/// crate's codec on the synthetic traffic dataset.
mod model {
    /// Intra-coded frame size relative to raw.
    pub const INTRA_RATIO: f64 = 0.08;
    /// Inter-coded (sequential) stream size relative to raw.
    pub const INTER_RATIO: f64 = 0.02;
    /// Extra I-frame cost per clip for the segmented layout.
    pub const CLIP_IFRAME_OVERHEAD: f64 = 0.06;
    /// Cost units: reading one raw frame.
    pub const READ_RAW: f64 = 1.0;
    /// Cost units: decoding one intra frame.
    pub const DECODE_INTRA: f64 = 4.0;
    /// Cost units: decoding one inter frame.
    pub const DECODE_INTER: f64 = 6.0;
}

/// The storage advisor: scores every layout for a workload.
#[derive(Debug, Default)]
pub struct StorageAdvisor;

impl StorageAdvisor {
    /// Rank all layouts for `profile` (best first). Clip length for the
    /// segmented candidate is chosen as the query span in frames.
    pub fn advise(profile: &WorkloadProfile) -> Vec<LayoutEstimate> {
        let n = profile.num_frames as f64;
        let raw = profile.raw_frame_bytes as f64;
        let sel = profile.temporal_selectivity.clamp(0.0, 1.0);
        let span = (sel * n).max(1.0);

        let candidates = [
            ("FrameFile(RAW)", n * raw, span * model::READ_RAW),
            (
                "FrameFile(JPEG)",
                n * raw * model::INTRA_RATIO,
                span * model::DECODE_INTRA,
            ),
            (
                "EncodedFile",
                n * raw * model::INTER_RATIO,
                // Expected decode length for a uniformly-placed range:
                // half the prefix plus the span itself.
                (n / 2.0 + span) * model::DECODE_INTER,
            ),
            (
                "SegmentedFile",
                n * raw * model::INTER_RATIO * (1.0 + model::CLIP_IFRAME_OVERHEAD),
                // One clip of slack on average.
                (span + span.min(n)) * model::DECODE_INTER,
            ),
        ];

        // Normalize each axis so the weights are meaningful.
        let max_storage = candidates
            .iter()
            .map(|c| c.1)
            .fold(f64::MIN, f64::max)
            .max(f64::EPSILON);
        let max_cost = candidates
            .iter()
            .map(|c| c.2)
            .fold(f64::MIN, f64::max)
            .max(f64::EPSILON);
        let w = profile.storage_weight.clamp(0.0, 1.0);

        let mut out: Vec<LayoutEstimate> = candidates
            .iter()
            .map(|(label, storage, cost)| LayoutEstimate {
                layout: (*label).to_string(),
                storage_bytes: *storage,
                query_cost: *cost,
                score: w * storage / max_storage + (1.0 - w) * cost / max_cost,
            })
            .collect();
        out.sort_by(|a, b| a.score.total_cmp(&b.score));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("deeplens-layout-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.dl", std::process::id()));
        std::fs::remove_file(&p).ok();
        p
    }

    /// Slowly-changing synthetic clip.
    fn clip(n: usize) -> Vec<Image> {
        (0..n)
            .map(|t| {
                let mut img = Image::solid(48, 32, [30, 80, 60]);
                img.fill_rect(t as i64 * 2, 8, 8, 8, [240, 200, 40]);
                img
            })
            .collect()
    }

    #[test]
    fn frame_file_raw_roundtrip_and_pushdown() {
        let frames = clip(20);
        let mut ff = FrameFile::ingest(tmpfile("ff-raw"), &frames, FrameFormat::Raw).unwrap();
        assert_eq!(ff.frame_count(), 20);
        let got = ff.scan_range(5, 9).unwrap();
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].0, 5);
        assert_eq!(got[0].1, frames[5], "raw layout is lossless");
        assert_eq!(
            ff.last_decoded_frames(),
            4,
            "exact pushdown decodes only the range"
        );
    }

    #[test]
    fn frame_file_intra_is_lossy_but_close() {
        let frames = clip(6);
        let mut ff = FrameFile::ingest(
            tmpfile("ff-jpeg"),
            &frames,
            FrameFormat::Intra(Quality::High),
        )
        .unwrap();
        let got = ff.scan_range(0, 6).unwrap();
        assert_eq!(got.len(), 6);
        for ((_, dec), orig) in got.iter().zip(&frames) {
            assert!(deeplens_codec::psnr(orig, dec) > 28.0);
        }
        assert!(ff.byte_size() > 0);
    }

    #[test]
    fn encoded_file_decodes_prefix() {
        let frames = clip(20);
        let mut ef = EncodedFile::ingest(tmpfile("ef"), &frames, Quality::High).unwrap();
        let got = ef.scan_range(15, 18).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, 15);
        // Sequential: had to decode frames 0..18.
        assert_eq!(ef.last_decoded_frames(), 18);
    }

    #[test]
    fn encoded_file_smaller_than_raw_frames() {
        let frames = clip(30);
        let raw_bytes: u64 = frames.iter().map(|f| f.byte_size() as u64).sum();
        let ef = EncodedFile::ingest(tmpfile("ef-size"), &frames, Quality::Medium).unwrap();
        assert!(
            ef.byte_size() * 4 < raw_bytes,
            "encoded {} should be far below raw {}",
            ef.byte_size(),
            raw_bytes
        );
    }

    #[test]
    fn segmented_file_coarse_pushdown() {
        let frames = clip(20);
        let mut sf = SegmentedFile::ingest(tmpfile("sf"), &frames, 5, Quality::High).unwrap();
        let got = sf.scan_range(7, 9).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 7);
        // Only the clip [5, 10) is decoded: 5 frames, not 9 and not 20.
        assert_eq!(sf.last_decoded_frames(), 5);
    }

    #[test]
    fn segmented_range_spanning_clips() {
        let frames = clip(20);
        let mut sf = SegmentedFile::ingest(tmpfile("sf-span"), &frames, 4, Quality::High).unwrap();
        let got = sf.scan_range(3, 13).unwrap();
        assert_eq!(got.len(), 10);
        let nos: Vec<u64> = got.iter().map(|(n, _)| *n).collect();
        assert_eq!(nos, (3..13).collect::<Vec<_>>());
        // Clips [0,4) [4,8) [8,12) [12,16) → 16 frames decoded.
        assert_eq!(sf.last_decoded_frames(), 16);
    }

    #[test]
    fn empty_range_is_empty() {
        let frames = clip(8);
        let mut sf = SegmentedFile::ingest(tmpfile("sf-empty"), &frames, 4, Quality::High).unwrap();
        assert!(sf.scan_range(5, 5).unwrap().is_empty());
        assert!(sf.scan_range(100, 200).unwrap().is_empty());
    }

    #[test]
    fn raw_frame_file_rejects_mixed_dimension_ingest() {
        // Regression: decode_payload reconstructs every raw record with the
        // *first* frame's width/height, so a mixed-dimension ingest used to
        // round-trip silently into garbage pixels.
        let frames = vec![
            Image::solid(48, 32, [10, 20, 30]),
            Image::solid(24, 16, [40, 50, 60]),
        ];
        let err = FrameFile::ingest(tmpfile("ff-mixed"), &frames, FrameFormat::Raw).unwrap_err();
        match err {
            StorageError::DimensionMismatch {
                expected_w: 48,
                expected_h: 32,
                got_w: 24,
                got_h: 16,
                frame_no: 1,
            } => {}
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
        // Intra-coded frames embed their own dimensions: mixed shapes are
        // legitimate there and must keep working.
        let mut ff = FrameFile::ingest(
            tmpfile("ff-mixed-jpeg"),
            &frames,
            FrameFormat::Intra(Quality::High),
        )
        .unwrap();
        let got = ff.scan_range(0, 2).unwrap();
        assert_eq!(got[0].1.width(), 48);
        assert_eq!(got[1].1.width(), 24);
    }

    #[test]
    fn raw_frame_file_rejects_mixed_dimension_append() {
        let frames = clip(3);
        let mut ff = FrameFile::ingest(tmpfile("ff-app"), &frames, FrameFormat::Raw).unwrap();
        let odd = Image::solid(12, 12, [1, 2, 3]);
        assert!(matches!(
            ff.append(&odd),
            Err(StorageError::DimensionMismatch { frame_no: 3, .. })
        ));
        assert_eq!(ff.frame_count(), 3, "rejected append stores nothing");
        // A matching frame still appends, and the file stays lossless.
        let ok = Image::solid(48, 32, [7, 8, 9]);
        assert_eq!(ff.append(&ok).unwrap(), 3);
        assert_eq!(ff.get(3).unwrap().unwrap(), ok);
    }

    #[test]
    fn segmented_zero_clip_len_is_an_error_not_a_panic() {
        // Regression: this used to assert! and take the process down — the
        // TileGenerator tile==0 bug class (PR 2), reappearing in storage.
        let frames = clip(4);
        let err = SegmentedFile::ingest(tmpfile("sf-zero"), &frames, 0, Quality::High).unwrap_err();
        assert!(matches!(err, StorageError::InvalidArgument(_)), "{err:?}");
    }

    #[test]
    fn encoded_out_of_range_scan_decodes_nothing() {
        // Regression: scan_range(start >= frame_count) used to decode the
        // whole prefix 0..end just to return an empty vec.
        let frames = clip(20);
        let mut ef = EncodedFile::ingest(tmpfile("ef-oor"), &frames, Quality::High).unwrap();
        assert!(ef.scan_range(100, 200).unwrap().is_empty());
        assert_eq!(ef.last_decoded_frames(), 0, "no prefix decode");
        assert!(ef.scan_range(20, 25).unwrap().is_empty());
        assert_eq!(ef.last_decoded_frames(), 0);
        // Empty ranges inside the file decode nothing either.
        assert!(ef.scan_range(5, 5).unwrap().is_empty());
        assert_eq!(ef.last_decoded_frames(), 0);
        // And a real scan still works afterwards.
        let got = ef.scan_range(15, 18).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(ef.last_decoded_frames(), 18);
    }

    #[test]
    fn advisor_prefers_encoded_for_storage() {
        let profile = WorkloadProfile {
            num_frames: 30_000,
            raw_frame_bytes: 6_000_000,
            temporal_selectivity: 0.5,
            storage_weight: 1.0,
        };
        let ranked = StorageAdvisor::advise(&profile);
        assert!(ranked[0].layout.contains("Encoded") || ranked[0].layout.contains("Segmented"));
        assert!(ranked[0].storage_bytes < ranked.last().unwrap().storage_bytes);
    }

    #[test]
    fn advisor_prefers_frame_file_for_point_queries() {
        let profile = WorkloadProfile {
            num_frames: 30_000,
            raw_frame_bytes: 6_000_000,
            temporal_selectivity: 0.001,
            storage_weight: 0.0,
        };
        let ranked = StorageAdvisor::advise(&profile);
        assert!(
            ranked[0].layout.contains("FrameFile"),
            "latency-only point queries favor frame files, got {}",
            ranked[0].layout
        );
    }

    #[test]
    fn advisor_balances_with_segmented() {
        let profile = WorkloadProfile {
            num_frames: 30_000,
            raw_frame_bytes: 6_000_000,
            temporal_selectivity: 0.01,
            storage_weight: 0.6,
        };
        let ranked = StorageAdvisor::advise(&profile);
        // With mixed weights the hybrid should beat the pure encoded layout.
        let seg_pos = ranked
            .iter()
            .position(|e| e.layout.contains("Segmented"))
            .unwrap();
        let enc_pos = ranked
            .iter()
            .position(|e| e.layout == "EncodedFile")
            .unwrap();
        assert!(
            seg_pos < enc_pos,
            "segmented should outrank encoded: {ranked:?}"
        );
    }
}
