//! # deeplens-storage
//!
//! Embedded storage engine for DeepLens.
//!
//! The DeepLens paper built its storage layer on BerkeleyDB; this crate is
//! the from-scratch substitute. It provides:
//!
//! * [`page`] / [`pager`] — 4 KiB checksummed pages over a single file with a
//!   free list.
//! * [`buffer`] — an LRU buffer pool (guarded by the ranked locks from
//!   `deeplens-analyze`) between the access methods and the pager.
//! * [`wal`] — a physical write-ahead log with commit records and replay.
//! * [`btree`] — an on-disk B+Tree with variable-length byte keys/values,
//!   overflow pages for large values, and ordered range scans (the engine
//!   behind sorted Frame Files and all single-dimensional secondary indexes).
//! * [`hashstore`] — a bucket-chained persistent hash store for exact-match
//!   lookups.
//! * [`layout`] — the paper's three video layouts (Frame File, Encoded File,
//!   Segmented File) behind one [`layout::VideoStore`] trait, plus the
//!   future-work *storage advisor* that picks a layout for a workload.
//!
//! ```no_run
//! use deeplens_storage::btree::BTree;
//!
//! let dir = std::env::temp_dir().join("dl-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let mut t = BTree::create(dir.join("t.dlb")).unwrap();
//! t.insert(b"frame/000041", b"payload").unwrap();
//! assert_eq!(t.get(b"frame/000041").unwrap().as_deref(), Some(&b"payload"[..]));
//! ```

pub mod btree;
pub mod buffer;
pub mod columnar;
pub mod error;
pub mod hashstore;
pub mod layout;
pub mod page;
pub mod pager;
pub mod wal;

pub use error::StorageError;

/// Result alias used throughout the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;
