//! Physical write-ahead log.
//!
//! Before a transaction's dirty pages overwrite the main database file, their
//! full images are appended here and fsynced under a commit record. Recovery
//! replays every *committed* image in order; a torn tail (crash mid-append)
//! is detected by per-record CRCs and ignored, so a crash between WAL append
//! and checkpoint can never corrupt the database.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::page::{crc32, PageId, PAGE_SIZE};
use crate::pager::Pager;
use crate::{Result, StorageError};

const REC_PAGE: u8 = 1;
const REC_COMMIT: u8 = 2;

/// An append-only write-ahead log file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Open (creating if necessary) the WAL at `path`, positioned for append.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false) // the log is append-only; existing records survive reopen
            .open(path.as_ref())?;
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            file,
            path: path.as_ref().to_path_buf(),
        })
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append_record(&mut self, kind: u8, page_id: PageId, payload: &[u8]) -> Result<()> {
        let mut rec = Vec::with_capacity(13 + payload.len());
        rec.push(kind);
        rec.extend_from_slice(&page_id.to_le_bytes());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(payload);
        let crc = crc32(&rec);
        rec.extend_from_slice(&crc.to_le_bytes());
        self.file.write_all(&rec)?;
        Ok(())
    }

    /// Append a page image (not yet durable; see [`Wal::commit`]).
    pub fn log_page(&mut self, page_id: PageId, image: &[u8; PAGE_SIZE]) -> Result<()> {
        self.append_record(REC_PAGE, page_id, image)
    }

    /// Append a commit record and fsync: everything logged so far becomes
    /// durable and will be replayed after a crash.
    pub fn commit(&mut self) -> Result<()> {
        self.append_record(REC_COMMIT, 0, &[])?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Truncate the log after a checkpoint has written all pages to the
    /// main file.
    pub fn truncate(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Current log size in bytes.
    pub fn byte_size(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// Read back every committed page image, in append order.
    ///
    /// Returns `(page_id, image)` pairs from committed transactions only.
    /// Records after the last commit — or any torn/corrupt record — are
    /// discarded, which is the correct crash-recovery semantics.
    pub fn replay<P: AsRef<Path>>(path: P) -> Result<Vec<(PageId, Vec<u8>)>> {
        let bytes = match std::fs::read(path.as_ref()) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(vec![]),
            Err(e) => return Err(e.into()),
        };
        let mut committed = Vec::new();
        let mut pending = Vec::new();
        let mut pos = 0usize;
        while pos + 13 <= bytes.len() {
            let kind = bytes[pos];
            let page_id = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4 bytes"));
            let len =
                u32::from_le_bytes(bytes[pos + 5..pos + 9].try_into().expect("4 bytes")) as usize;
            let rec_end = pos + 9 + len;
            if rec_end + 4 > bytes.len() {
                break; // torn tail
            }
            let stored_crc =
                u32::from_le_bytes(bytes[rec_end..rec_end + 4].try_into().expect("4 bytes"));
            if crc32(&bytes[pos..rec_end]) != stored_crc {
                break; // corrupt record: stop replay here
            }
            match kind {
                REC_PAGE => {
                    if len != PAGE_SIZE {
                        return Err(StorageError::WalCorrupt(format!(
                            "page record of {len} bytes"
                        )));
                    }
                    pending.push((page_id, bytes[pos + 9..rec_end].to_vec()));
                }
                REC_COMMIT => committed.append(&mut pending),
                other => {
                    return Err(StorageError::WalCorrupt(format!(
                        "unknown record kind {other}"
                    )))
                }
            }
            pos = rec_end + 4;
        }
        Ok(committed)
    }

    /// Apply all committed images from the log at `wal_path` to `pager`,
    /// then sync. Returns the number of pages applied.
    pub fn recover_into<P: AsRef<Path>>(wal_path: P, pager: &mut Pager) -> Result<usize> {
        let images = Self::replay(wal_path)?;
        let n = images.len();
        for (page_id, image) in images {
            // Page images may reference pages allocated after the snapshot;
            // extend the file as needed.
            while page_id >= pager.page_count() {
                pager.allocate()?;
            }
            let arr: [u8; PAGE_SIZE] = image
                .as_slice()
                .try_into()
                .expect("replay validated length");
            let page = crate::page::Page::from_bytes(arr, page_id)?;
            pager.write_page(page_id, &page)?;
        }
        pager.sync()?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::Page;

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("deeplens-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.wal", std::process::id()));
        std::fs::remove_file(&p).ok();
        p
    }

    fn page_image(tag: u32) -> [u8; PAGE_SIZE] {
        let mut p = Page::zeroed();
        p.put_u32(0, tag);
        p.to_bytes()
    }

    #[test]
    fn committed_records_replay() {
        let path = tmpfile("commit");
        let mut wal = Wal::open(&path).unwrap();
        wal.log_page(3, &page_image(30)).unwrap();
        wal.log_page(4, &page_image(40)).unwrap();
        wal.commit().unwrap();
        let images = Wal::replay(&path).unwrap();
        assert_eq!(images.len(), 2);
        assert_eq!(images[0].0, 3);
        assert_eq!(images[1].0, 4);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn uncommitted_records_discarded() {
        let path = tmpfile("uncommitted");
        let mut wal = Wal::open(&path).unwrap();
        wal.log_page(1, &page_image(10)).unwrap();
        wal.commit().unwrap();
        wal.log_page(2, &page_image(20)).unwrap(); // no commit
        let images = Wal::replay(&path).unwrap();
        assert_eq!(images.len(), 1);
        assert_eq!(images[0].0, 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn torn_tail_ignored() {
        let path = tmpfile("torn");
        let mut wal = Wal::open(&path).unwrap();
        wal.log_page(1, &page_image(10)).unwrap();
        wal.commit().unwrap();
        wal.log_page(2, &page_image(20)).unwrap();
        wal.commit().unwrap();
        drop(wal);
        // Simulate a crash mid-append: chop bytes off the tail.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let images = Wal::replay(&path).unwrap();
        assert_eq!(images.len(), 1, "second txn lost its commit record");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let path = tmpfile("corrupt");
        let mut wal = Wal::open(&path).unwrap();
        wal.log_page(1, &page_image(10)).unwrap();
        wal.commit().unwrap();
        wal.log_page(2, &page_image(20)).unwrap();
        wal.commit().unwrap();
        drop(wal);
        // Flip a byte inside the second transaction's page record.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2 + 200;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let images = Wal::replay(&path).unwrap();
        assert_eq!(images.len(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn recover_applies_images_to_pager() {
        let dir = std::env::temp_dir().join("deeplens-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let db = dir.join(format!("rec-{}.dlp", std::process::id()));
        let walp = tmpfile("recover");
        std::fs::remove_file(&db).ok();

        let mut pager = Pager::create(&db).unwrap();
        let pid = pager.allocate().unwrap();
        let mut wal = Wal::open(&walp).unwrap();
        let mut page = Page::zeroed();
        page.put_u32(0, 777);
        wal.log_page(pid, &page.to_bytes()).unwrap();
        wal.commit().unwrap();
        // Crash before writing the page to the main file; now recover.
        let applied = Wal::recover_into(&walp, &mut pager).unwrap();
        assert_eq!(applied, 1);
        assert_eq!(pager.read_page(pid).unwrap().get_u32(0), 777);
        std::fs::remove_file(db).ok();
        std::fs::remove_file(walp).ok();
    }

    #[test]
    fn truncate_resets_log() {
        let path = tmpfile("trunc");
        let mut wal = Wal::open(&path).unwrap();
        wal.log_page(1, &page_image(1)).unwrap();
        wal.commit().unwrap();
        assert!(wal.byte_size().unwrap() > 0);
        wal.truncate().unwrap();
        assert_eq!(wal.byte_size().unwrap(), 0);
        assert!(Wal::replay(&path).unwrap().is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn replay_of_missing_file_is_empty() {
        let p = tmpfile("missing");
        std::fs::remove_file(&p).ok();
        assert!(Wal::replay(&p).unwrap().is_empty());
    }
}
