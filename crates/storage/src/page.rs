//! Fixed-size checksummed pages.
//!
//! Every on-disk structure in the engine is built from [`PAGE_SIZE`] pages.
//! The last four bytes of each page hold a CRC32 over the rest, verified on
//! every read, so torn writes and bit rot surface as
//! [`crate::StorageError::ChecksumMismatch`] instead of silent corruption.

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Usable payload bytes per page (the tail stores the CRC32 checksum).
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - 4;

/// Identifier of a page within a database file. Page 0 is the file header.
pub type PageId = u32;

/// Sentinel page id meaning "no page" (null pointer in page link fields).
pub const NO_PAGE: PageId = u32::MAX;

/// CRC32 (IEEE 802.3, reflected) implemented from scratch with a lazily
/// built lookup table.
pub fn crc32(data: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// An in-memory page image.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page(crc={:#010x})", crc32(&self.data[..PAGE_PAYLOAD]))
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl Page {
    /// An all-zero page.
    pub fn zeroed() -> Self {
        Page {
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// Construct from a raw page image, verifying its checksum.
    pub fn from_bytes(bytes: [u8; PAGE_SIZE], page_id: PageId) -> crate::Result<Self> {
        let stored = u32::from_le_bytes(bytes[PAGE_PAYLOAD..].try_into().expect("4 bytes"));
        let computed = crc32(&bytes[..PAGE_PAYLOAD]);
        if stored != computed {
            return Err(crate::StorageError::ChecksumMismatch { page_id });
        }
        Ok(Page {
            data: Box::new(bytes),
        })
    }

    /// Serialize, stamping the checksum into the tail.
    pub fn to_bytes(&self) -> [u8; PAGE_SIZE] {
        let mut out = *self.data;
        let crc = crc32(&out[..PAGE_PAYLOAD]);
        out[PAGE_PAYLOAD..].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Usable payload slice.
    #[inline]
    pub fn payload(&self) -> &[u8] {
        &self.data[..PAGE_PAYLOAD]
    }

    /// Mutable payload slice.
    #[inline]
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.data[..PAGE_PAYLOAD]
    }

    // ---- typed little-endian accessors into the payload ----

    /// Read a `u32` at byte offset `off`.
    #[inline]
    pub fn get_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.data[off..off + 4].try_into().expect("in bounds"))
    }

    /// Write a `u32` at byte offset `off`.
    #[inline]
    pub fn put_u32(&mut self, off: usize, v: u32) {
        self.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a `u16` at byte offset `off`.
    #[inline]
    pub fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.data[off..off + 2].try_into().expect("in bounds"))
    }

    /// Write a `u16` at byte offset `off`.
    #[inline]
    pub fn put_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Read one byte at offset `off`.
    #[inline]
    pub fn get_u8(&self, off: usize) -> u8 {
        self.data[off]
    }

    /// Write one byte at offset `off`.
    #[inline]
    pub fn put_u8(&mut self, off: usize, v: u8) {
        self.data[off] = v;
    }

    /// Copy `src` into the payload at offset `off`.
    #[inline]
    pub fn put_slice(&mut self, off: usize, src: &[u8]) {
        self.data[off..off + src.len()].copy_from_slice(src);
    }

    /// Borrow `len` payload bytes at offset `off`.
    #[inline]
    pub fn get_slice(&self, off: usize, len: usize) -> &[u8] {
        &self.data[off..off + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for IEEE CRC32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_with_checksum() {
        let mut p = Page::zeroed();
        p.put_u32(0, 0xDEAD_BEEF);
        p.put_u16(100, 777);
        p.put_slice(200, b"hello");
        let bytes = p.to_bytes();
        let q = Page::from_bytes(bytes, 1).unwrap();
        assert_eq!(q.get_u32(0), 0xDEAD_BEEF);
        assert_eq!(q.get_u16(100), 777);
        assert_eq!(q.get_slice(200, 5), b"hello");
    }

    #[test]
    fn corruption_detected() {
        let p = Page::zeroed();
        let mut bytes = p.to_bytes();
        bytes[17] ^= 0x40;
        assert!(matches!(
            Page::from_bytes(bytes, 9),
            Err(crate::StorageError::ChecksumMismatch { page_id: 9 })
        ));
    }

    #[test]
    fn checksum_corruption_detected() {
        let p = Page::zeroed();
        let mut bytes = p.to_bytes();
        bytes[PAGE_SIZE - 1] ^= 0x01;
        assert!(Page::from_bytes(bytes, 0).is_err());
    }

    #[test]
    fn typed_accessors_roundtrip() {
        let mut p = Page::zeroed();
        p.put_u8(50, 0xAB);
        assert_eq!(p.get_u8(50), 0xAB);
        p.put_u32(60, u32::MAX);
        assert_eq!(p.get_u32(60), u32::MAX);
    }
}
