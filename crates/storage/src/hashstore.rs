//! Persistent hash store: static bucket directory with chained pages.
//!
//! The paper supports hash tables over any discrete metadata key (paper
//! §3.2); this is the on-disk equivalent. Exact-match lookups cost one hash
//! plus a short chain walk, independent of key order. Entries must fit in a
//! single bucket page (they hold patch-id lists and small metadata, not
//! frames), which keeps the structure simple and fast.

use std::path::Path;

use crate::buffer::BufferPool;
use crate::page::{Page, PageId, NO_PAGE, PAGE_PAYLOAD};
use crate::pager::Pager;
use crate::{Result, StorageError};

/// One stored key/value pair.
type Entry = (Vec<u8>, Vec<u8>);

const T_DIR: u8 = 4;
const T_BUCKET: u8 = 5;

/// Maximum combined key + value size per entry.
pub const MAX_ENTRY: usize = 2048;

/// Default number of buckets.
pub const DEFAULT_BUCKETS: u32 = 256;

/// FNV-1a 64-bit hash.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A persistent hash map from byte keys to byte values.
#[derive(Debug)]
pub struct HashStore {
    pool: BufferPool,
    dir_page: PageId,
    nbuckets: u32,
    count: u64,
}

impl HashStore {
    /// Create a fresh store with [`DEFAULT_BUCKETS`] buckets.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        Self::create_with_buckets(path, DEFAULT_BUCKETS)
    }

    /// Create a fresh store with a specific power-of-two bucket count.
    pub fn create_with_buckets<P: AsRef<Path>>(path: P, nbuckets: u32) -> Result<Self> {
        assert!(
            nbuckets.is_power_of_two(),
            "bucket count must be a power of two"
        );
        let max = ((PAGE_PAYLOAD - 13) / 4) as u32;
        assert!(
            nbuckets <= max,
            "at most {max} buckets fit the directory page"
        );
        let pager = Pager::create(path)?;
        let pool = BufferPool::new(pager);
        let dir_page = pool.allocate()?;
        let mut dir = Page::zeroed();
        dir.put_u8(0, T_DIR);
        dir.put_u32(1, nbuckets);
        dir.put_u32(5, 0); // low 32 bits of count
        for i in 0..nbuckets {
            dir.put_u32(13 + (i as usize) * 4, NO_PAGE);
        }
        pool.put(dir_page, dir)?;
        pool.with_pager(|p| p.set_root_b(dir_page));
        Ok(HashStore {
            pool,
            dir_page,
            nbuckets,
            count: 0,
        })
    }

    /// Open an existing store.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let pager = Pager::open(path)?;
        let pool = BufferPool::new(pager);
        let dir_page = pool.with_pager(|p| p.root_b());
        if dir_page == NO_PAGE {
            return Err(StorageError::BadHeader("file has no hash directory".into()));
        }
        let dir = pool.get(dir_page)?;
        if dir.get_u8(0) != T_DIR {
            return Err(StorageError::Corrupt(
                "directory page has wrong type".into(),
            ));
        }
        let nbuckets = dir.get_u32(1);
        let count = dir.get_u32(5) as u64;
        Ok(HashStore {
            pool,
            dir_page,
            nbuckets,
            count,
        })
    }

    /// Number of live entries.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// On-disk footprint in bytes.
    pub fn byte_size(&self) -> u64 {
        self.pool.with_pager(|p| p.byte_size())
    }

    fn bucket_of(&self, key: &[u8]) -> u32 {
        (fnv1a(key) & (self.nbuckets as u64 - 1)) as u32
    }

    fn bucket_head(&self, bucket: u32) -> Result<PageId> {
        let dir = self.pool.get(self.dir_page)?;
        Ok(dir.get_u32(13 + bucket as usize * 4))
    }

    fn set_bucket_head(&self, bucket: u32, head: PageId) -> Result<()> {
        let mut dir = self.pool.get(self.dir_page)?;
        dir.put_u32(13 + bucket as usize * 4, head);
        self.pool.put(self.dir_page, dir)
    }

    /// Parse all entries of a bucket page.
    fn page_entries(page: &Page) -> Result<(Vec<Entry>, PageId)> {
        if page.get_u8(0) != T_BUCKET {
            return Err(StorageError::Corrupt("expected bucket page".into()));
        }
        let n = page.get_u16(1) as usize;
        let next = page.get_u32(3);
        let mut entries = Vec::with_capacity(n);
        let mut off = 7;
        for _ in 0..n {
            let klen = page.get_u16(off) as usize;
            let vlen = page.get_u16(off + 2) as usize;
            let k = page.get_slice(off + 4, klen).to_vec();
            let v = page.get_slice(off + 4 + klen, vlen).to_vec();
            entries.push((k, v));
            off += 4 + klen + vlen;
        }
        Ok((entries, next))
    }

    fn write_entries(entries: &[(Vec<u8>, Vec<u8>)], next: PageId) -> Page {
        let mut page = Page::zeroed();
        page.put_u8(0, T_BUCKET);
        page.put_u16(1, entries.len() as u16);
        page.put_u32(3, next);
        let mut off = 7;
        for (k, v) in entries {
            page.put_u16(off, k.len() as u16);
            page.put_u16(off + 2, v.len() as u16);
            page.put_slice(off + 4, k);
            page.put_slice(off + 4 + k.len(), v);
            off += 4 + k.len() + v.len();
        }
        page
    }

    fn entries_size(entries: &[(Vec<u8>, Vec<u8>)]) -> usize {
        7 + entries
            .iter()
            .map(|(k, v)| 4 + k.len() + v.len())
            .sum::<usize>()
    }

    /// Insert or replace. Returns `true` when the key was new.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<bool> {
        if key.len() + value.len() > MAX_ENTRY {
            return Err(StorageError::EntryTooLarge {
                size: key.len() + value.len(),
                max: MAX_ENTRY,
            });
        }
        let bucket = self.bucket_of(key);
        let head = self.bucket_head(bucket)?;

        // Pass 1: replace in place if the key exists anywhere in the chain.
        let mut cur = head;
        while cur != NO_PAGE {
            let page = self.pool.get(cur)?;
            let (mut entries, next) = Self::page_entries(&page)?;
            if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
                entries[pos].1 = value.to_vec();
                if Self::entries_size(&entries) <= PAGE_PAYLOAD {
                    self.pool.put(cur, Self::write_entries(&entries, next))?;
                    return Ok(false);
                }
                // Doesn't fit after growth: drop here, reinsert below.
                entries.remove(pos);
                self.pool.put(cur, Self::write_entries(&entries, next))?;
                self.count -= 1; // insert_new below re-increments
                break;
            }
            cur = next;
        }

        // Pass 2: insert into the first page with room, else prepend a page.
        let mut cur = head;
        while cur != NO_PAGE {
            let page = self.pool.get(cur)?;
            let (mut entries, next) = Self::page_entries(&page)?;
            let new_size = Self::entries_size(&entries) + 4 + key.len() + value.len();
            if new_size <= PAGE_PAYLOAD {
                entries.push((key.to_vec(), value.to_vec()));
                self.pool.put(cur, Self::write_entries(&entries, next))?;
                self.count += 1;
                self.persist_count()?;
                return Ok(true);
            }
            cur = next;
        }
        let new_page = self.pool.allocate()?;
        let entries = vec![(key.to_vec(), value.to_vec())];
        self.pool
            .put(new_page, Self::write_entries(&entries, head))?;
        self.set_bucket_head(bucket, new_page)?;
        self.count += 1;
        self.persist_count()?;
        Ok(true)
    }

    fn persist_count(&self) -> Result<()> {
        let mut dir = self.pool.get(self.dir_page)?;
        dir.put_u32(5, self.count as u32);
        self.pool.put(self.dir_page, dir)
    }

    /// Look up a key.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut cur = self.bucket_head(self.bucket_of(key))?;
        while cur != NO_PAGE {
            let page = self.pool.get(cur)?;
            let (entries, next) = Self::page_entries(&page)?;
            if let Some((_, v)) = entries.iter().find(|(k, _)| k == key) {
                return Ok(Some(v.clone()));
            }
            cur = next;
        }
        Ok(None)
    }

    /// Remove a key. Returns `true` when it existed.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        let mut cur = self.bucket_head(self.bucket_of(key))?;
        while cur != NO_PAGE {
            let page = self.pool.get(cur)?;
            let (mut entries, next) = Self::page_entries(&page)?;
            if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
                entries.remove(pos);
                self.pool.put(cur, Self::write_entries(&entries, next))?;
                self.count -= 1;
                self.persist_count()?;
                return Ok(true);
            }
            cur = next;
        }
        Ok(false)
    }

    /// Visit every entry (unspecified order).
    pub fn for_each(&self, mut f: impl FnMut(&[u8], &[u8])) -> Result<()> {
        for bucket in 0..self.nbuckets {
            let mut cur = self.bucket_head(bucket)?;
            while cur != NO_PAGE {
                let page = self.pool.get(cur)?;
                let (entries, next) = Self::page_entries(&page)?;
                for (k, v) in &entries {
                    f(k, v);
                }
                cur = next;
            }
        }
        Ok(())
    }

    /// Flush all dirty pages and fsync.
    pub fn flush(&mut self) -> Result<()> {
        self.persist_count()?;
        self.pool.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("deeplens-hash-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.dlh", std::process::id()));
        std::fs::remove_file(&p).ok();
        p
    }

    #[test]
    fn fnv_distinct_for_close_keys() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b"key1"), fnv1a(b"key2"));
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
    }

    #[test]
    fn put_get_delete() {
        let path = tmpfile("basic");
        let mut h = HashStore::create(&path).unwrap();
        assert!(h.put(b"label", b"car").unwrap());
        assert!(!h.put(b"label", b"truck").unwrap());
        assert_eq!(h.get(b"label").unwrap(), Some(b"truck".to_vec()));
        assert_eq!(h.get(b"missing").unwrap(), None);
        assert!(h.delete(b"label").unwrap());
        assert!(!h.delete(b"label").unwrap());
        assert_eq!(h.len(), 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn many_keys_chain_overflow() {
        let path = tmpfile("many");
        // Tiny directory so chains get long and pages overflow.
        let mut h = HashStore::create_with_buckets(&path, 8).unwrap();
        for i in 0..2000u32 {
            let k = format!("key-{i}");
            let v = format!("value-{i}").repeat(4);
            assert!(h.put(k.as_bytes(), v.as_bytes()).unwrap());
        }
        assert_eq!(h.len(), 2000);
        for i in (0..2000u32).step_by(37) {
            let k = format!("key-{i}");
            assert_eq!(
                h.get(k.as_bytes()).unwrap(),
                Some(format!("value-{i}").repeat(4).into_bytes())
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn replacement_with_growth_relocates() {
        let path = tmpfile("grow");
        let mut h = HashStore::create_with_buckets(&path, 8).unwrap();
        // Fill one page nearly to the brim, then grow an entry.
        for i in 0..20u32 {
            h.put(format!("k{i}").as_bytes(), &[b'x'; 180]).unwrap();
        }
        let n = h.len();
        h.put(b"k3", &vec![b'y'; 1500]).unwrap();
        assert_eq!(h.len(), n, "replacement must not change count");
        assert_eq!(h.get(b"k3").unwrap().unwrap().len(), 1500);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn oversized_entry_rejected() {
        let path = tmpfile("big");
        let mut h = HashStore::create(&path).unwrap();
        assert!(matches!(
            h.put(b"k", &vec![0u8; MAX_ENTRY + 1]),
            Err(StorageError::EntryTooLarge { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn persistence_across_reopen() {
        let path = tmpfile("persist");
        {
            let mut h = HashStore::create(&path).unwrap();
            for i in 0..300u32 {
                h.put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            h.flush().unwrap();
        }
        let h = HashStore::open(&path).unwrap();
        assert_eq!(h.len(), 300);
        assert_eq!(h.get(b"k250").unwrap(), Some(b"v250".to_vec()));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn for_each_visits_everything() {
        let path = tmpfile("iter");
        let mut h = HashStore::create_with_buckets(&path, 16).unwrap();
        for i in 0..100u32 {
            h.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        let mut seen = 0;
        h.for_each(|_, v| {
            assert_eq!(v, b"v");
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, 100);
        std::fs::remove_file(path).ok();
    }
}
