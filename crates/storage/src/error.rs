//! Error type for the storage engine.

use std::fmt;
use std::io;
use std::sync::Arc;

/// Errors produced by the storage engine.
#[derive(Debug, Clone)]
pub enum StorageError {
    /// Underlying file I/O failed. Wrapped in `Arc` so the error stays `Clone`.
    Io(Arc<io::Error>),
    /// A page checksum did not verify on read.
    ChecksumMismatch {
        /// The page whose checksum failed.
        page_id: u32,
    },
    /// A page id past the end of the file was requested.
    PageOutOfBounds {
        /// The requested page.
        page_id: u32,
        /// Number of pages in the file.
        page_count: u32,
    },
    /// The database file header is not a DeepLens storage file.
    BadHeader(String),
    /// A key or value exceeds what the access method can store.
    EntryTooLarge {
        /// Size of the offending entry in bytes.
        size: usize,
        /// Maximum supported size.
        max: usize,
    },
    /// An access-method invariant was violated (indicates a bug or a corrupt file).
    Corrupt(String),
    /// A caller-supplied parameter is invalid for the requested operation.
    InvalidArgument(String),
    /// A frame's dimensions do not match the layout's fixed raster shape.
    DimensionMismatch {
        /// Width the layout was created with.
        expected_w: u32,
        /// Height the layout was created with.
        expected_h: u32,
        /// Width of the offending frame.
        got_w: u32,
        /// Height of the offending frame.
        got_h: u32,
        /// Frame number of the offending frame.
        frame_no: u64,
    },
    /// Decoding a stored video/image payload failed.
    Codec(String),
    /// The WAL contains a malformed record.
    WalCorrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::ChecksumMismatch { page_id } => {
                write!(f, "checksum mismatch on page {page_id}")
            }
            StorageError::PageOutOfBounds {
                page_id,
                page_count,
            } => {
                write!(
                    f,
                    "page {page_id} out of bounds (file has {page_count} pages)"
                )
            }
            StorageError::BadHeader(msg) => write!(f, "bad storage header: {msg}"),
            StorageError::EntryTooLarge { size, max } => {
                write!(f, "entry of {size} bytes exceeds maximum {max}")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt structure: {msg}"),
            StorageError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            StorageError::DimensionMismatch {
                expected_w,
                expected_h,
                got_w,
                got_h,
                frame_no,
            } => {
                write!(
                    f,
                    "frame {frame_no} is {got_w}x{got_h} but the layout stores \
                     {expected_w}x{expected_h} rasters"
                )
            }
            StorageError::Codec(msg) => write!(f, "codec failure: {msg}"),
            StorageError::WalCorrupt(msg) => write!(f, "corrupt WAL: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(Arc::new(e))
    }
}

impl From<deeplens_codec::CodecError> for StorageError {
    fn from(e: deeplens_codec::CodecError) -> Self {
        StorageError::Codec(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_conversion_preserves_source() {
        let e: StorageError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_variants() {
        assert!(StorageError::ChecksumMismatch { page_id: 7 }
            .to_string()
            .contains('7'));
        assert!(StorageError::EntryTooLarge { size: 10, max: 5 }
            .to_string()
            .contains("10"));
    }
}
