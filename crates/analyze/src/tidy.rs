//! The tidy workspace lint: a hand-rolled line/token scanner over
//! `crates/**/src/**/*.rs` enforcing the DeepLens hygiene rules.
//!
//! Rules (each one unit-tested against fixture snippets below):
//!
//! 1. **raw-lock** — no raw `parking_lot::{Mutex, RwLock}` or
//!    `std::sync::{Mutex, Condvar}` outside the [`crate::sync`] module and
//!    the explicit [`RAW_LOCK_WHITELIST`]; all engine locking goes through
//!    the ranked wrappers so the lockdep checker sees it.
//! 2. **serve-panic** — no `.unwrap()` / `.expect(` / `panic!` /
//!    `unreachable!` in non-test `crates/serve` request-handling code; a
//!    malformed request must produce an `Error` wire reply, never a dead
//!    connection thread.
//! 3. **no-debug-macro** — no `todo!` / `unimplemented!` / `dbg!` anywhere
//!    (test code included).
//! 4. **allow-justification** — every `#[allow(...)]` in non-test code
//!    carries a justification: a trailing `//` comment on the same line or a
//!    `//` comment on the line directly above.
//! 5. **bench-artifacts** — the `DEFAULT_ARTIFACTS` list in the bench gate
//!    binary names exactly the `BENCH_*.json` files committed at the
//!    workspace root, in both directions.
//! 6. **module-doc** — every `src/**/*.rs` file in a non-shim crate opens
//!    with a `//!` module doc as its first non-blank line, so `cargo doc`
//!    renders a description for every module and the docs burndown cannot
//!    silently regress (the shims are vendored API stand-ins and exempt).
//!
//! The scanner is deliberately line-based, not a Rust parser: it strips
//! `//` comments (with a string-literal heuristic so `"https://..."`
//! survives), and treats everything after a line reading `#[cfg(test)]` as
//! test code (the workspace convention keeps test modules trailing).
//! Violations carry `file:line` so they print as clickable diagnostics.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Files (workspace-relative, `/`-separated) exempt from the **raw-lock**
/// rule: the ranked wrappers themselves and the offline `parking_lot` shim
/// they replaced.
pub const RAW_LOCK_WHITELIST: &[&str] = &[
    "crates/analyze/src/sync.rs",
    "crates/shims/parking_lot/src/lib.rs",
];

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Short rule identifier (e.g. `raw-lock`).
    pub rule: &'static str,
    /// Human-readable description of the problem.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

// Banned-pattern strings are assembled with `concat!` so this file does not
// trip its own rules when tidy scans the workspace it lives in.
const TODO_MACRO: &str = concat!("to", "do!");
const UNIMPLEMENTED_MACRO: &str = concat!("unimpl", "emented!");
const DBG_MACRO: &str = concat!("db", "g!");
const UNWRAP_CALL: &str = concat!(".unw", "rap()");
const EXPECT_CALL: &str = concat!(".exp", "ect(");
const PANIC_MACRO: &str = concat!("pan", "ic!");
const UNREACHABLE_MACRO: &str = concat!("unreach", "able!");
const ALLOW_OUTER: &str = concat!("#[", "allow(");
const ALLOW_INNER: &str = concat!("#![", "allow(");
const CFG_TEST: &str = concat!("#[", "cfg(te", "st)]");
const PARKING_LOT_CRATE: &str = concat!("parking", "_lot");
const STD_SYNC_PATH: &str = concat!("std::", "sync");
const MUTEX_TYPE: &str = concat!("Mu", "tex");
const RWLOCK_TYPE: &str = concat!("Rw", "Lock");
const CONDVAR_TYPE: &str = concat!("Cond", "var");

/// One preprocessed source line.
struct Line<'a> {
    /// 1-based line number.
    number: usize,
    /// The raw text, untouched.
    raw: &'a str,
    /// The text with `//` comments stripped.
    code: String,
    /// Whether this line sits at or below the file's first `#[cfg(test)]`.
    in_test: bool,
}

/// Strip a trailing `//` comment, leaving string literals intact.
///
/// Walks the line tracking double-quoted string state (with `\` escapes) and
/// skipping `'"'` char literals, so `let url = "a://b"; // note` keeps the
/// URL and drops the note. Raw strings spanning lines are out of scope for a
/// line lint; none of the enforced patterns can hide in one without also
/// appearing on a single line.
fn strip_comment(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            match b {
                b'\\' => i += 1, // skip the escaped byte
                b'"' => in_string = false,
                _ => {}
            }
        } else {
            match b {
                // A char literal that would confuse the quote tracker.
                b'\'' if i + 2 < bytes.len() && bytes[i + 1] == b'"' && bytes[i + 2] == b'\'' => {
                    i += 2;
                }
                b'"' => in_string = true,
                b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                    return line[..i].to_string();
                }
                _ => {}
            }
        }
        i += 1;
    }
    line.to_string()
}

/// True when `needle` occurs in `haystack` not preceded by an identifier
/// character — so `Mutex` matches `std::sync::Mutex` but not `OrderedMutex`.
fn has_word(haystack: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let abs = start + pos;
        let preceded = haystack[..abs]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !preceded {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

/// Preprocess a file into lines: strip comments, mark the trailing test
/// section.
fn preprocess(text: &str) -> Vec<Line<'_>> {
    let mut in_test = false;
    text.lines()
        .enumerate()
        .map(|(idx, raw)| {
            if raw.trim() == CFG_TEST {
                in_test = true;
            }
            Line {
                number: idx + 1,
                raw,
                code: strip_comment(raw),
                in_test,
            }
        })
        .collect()
}

/// Run the per-file rules (1–4) against one source file.
///
/// `rel_path` is the workspace-relative, `/`-separated path; it decides rule
/// applicability (whitelists, the serve-only panic rule).
pub fn check_source(rel_path: &str, text: &str) -> Vec<Violation> {
    let lines = preprocess(text);
    let mut out = Vec::new();
    check_raw_locks(rel_path, &lines, &mut out);
    check_serve_panics(rel_path, &lines, &mut out);
    check_debug_macros(rel_path, &lines, &mut out);
    check_allow_justifications(rel_path, &lines, &mut out);
    check_module_docs(rel_path, text, &mut out);
    out
}

/// Rule 1: raw lock types outside the sync module and whitelist.
fn check_raw_locks(rel_path: &str, lines: &[Line<'_>], out: &mut Vec<Violation>) {
    if RAW_LOCK_WHITELIST.contains(&rel_path) {
        return;
    }
    for line in lines {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let parking = code.contains(PARKING_LOT_CRATE)
            && (has_word(code, MUTEX_TYPE) || has_word(code, RWLOCK_TYPE));
        let std_sync = code.contains(STD_SYNC_PATH)
            && (has_word(code, MUTEX_TYPE) || has_word(code, CONDVAR_TYPE));
        if parking || std_sync {
            out.push(Violation {
                file: rel_path.to_string(),
                line: line.number,
                rule: "raw-lock",
                msg: format!(
                    "raw lock primitive outside the sync module; use \
                     deeplens_analyze::sync::{{OrderedMutex, OrderedRwLock, \
                     OrderedCondvar}} (or extend RAW_LOCK_WHITELIST): `{}`",
                    line.raw.trim()
                ),
            });
        }
    }
}

/// Rule 2: panicking calls in non-test serve request paths.
fn check_serve_panics(rel_path: &str, lines: &[Line<'_>], out: &mut Vec<Violation>) {
    if !rel_path.starts_with("crates/serve/src/") || rel_path.contains("/bin/") {
        return;
    }
    for line in lines {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        for (pat, what) in [
            (UNWRAP_CALL, "unwrap"),
            (EXPECT_CALL, "expect"),
            (PANIC_MACRO, "panic"),
            (UNREACHABLE_MACRO, "unreachable"),
        ] {
            if code.contains(pat) {
                out.push(Violation {
                    file: rel_path.to_string(),
                    line: line.number,
                    rule: "serve-panic",
                    msg: format!(
                        "`{what}` in serve request-handling code; reply with \
                         Response::Error or propagate a Result instead: `{}`",
                        line.raw.trim()
                    ),
                });
            }
        }
    }
}

/// Rule 3: leftover debug macros, anywhere (tests included).
fn check_debug_macros(rel_path: &str, lines: &[Line<'_>], out: &mut Vec<Violation>) {
    for line in lines {
        let code = &line.code;
        for (pat, what) in [
            (TODO_MACRO, TODO_MACRO),
            (UNIMPLEMENTED_MACRO, UNIMPLEMENTED_MACRO),
            (DBG_MACRO, DBG_MACRO),
        ] {
            if has_word(code, pat) {
                out.push(Violation {
                    file: rel_path.to_string(),
                    line: line.number,
                    rule: "no-debug-macro",
                    msg: format!("`{what}` must not be committed: `{}`", line.raw.trim()),
                });
            }
        }
    }
}

/// Rule 4: `#[allow(...)]` without a justification comment.
fn check_allow_justifications(rel_path: &str, lines: &[Line<'_>], out: &mut Vec<Violation>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        if !(code.contains(ALLOW_OUTER) || code.contains(ALLOW_INNER)) {
            continue;
        }
        // Justified if the raw line carries a trailing comment (strip_comment
        // shortened it), or the previous line is a comment.
        let trailing = line.raw.len() > line.code.len();
        let above = idx
            .checked_sub(1)
            .map(|i| lines[i].raw.trim_start().starts_with("//"))
            .unwrap_or(false);
        if !(trailing || above) {
            out.push(Violation {
                file: rel_path.to_string(),
                line: line.number,
                rule: "allow-justification",
                msg: format!(
                    "`{ALLOW_OUTER}...)]` needs a justification comment on the \
                     same line or the line above: `{}`",
                    line.raw.trim()
                ),
            });
        }
    }
}

/// Rule 6: every non-shim module file opens with `//!` module docs.
///
/// Works on the raw text (not the comment-stripped lines — the doc comment
/// IS a comment): the first non-blank line must start with `//!`. Shim
/// crates mirror external APIs verbatim and are exempt.
fn check_module_docs(rel_path: &str, text: &str, out: &mut Vec<Violation>) {
    if rel_path.starts_with("crates/shims/") {
        return;
    }
    let first = text
        .lines()
        .enumerate()
        .find(|(_, raw)| !raw.trim().is_empty());
    let Some((idx, raw)) = first else {
        out.push(Violation {
            file: rel_path.to_string(),
            line: 1,
            rule: "module-doc",
            msg: "empty module file; add `//!` docs or delete it".to_string(),
        });
        return;
    };
    if !raw.trim_start().starts_with("//!") {
        out.push(Violation {
            file: rel_path.to_string(),
            line: idx + 1,
            rule: "module-doc",
            msg: format!(
                "module must open with `//!` docs (first non-blank line is \
                 `{}`); describe what the module is for",
                raw.trim()
            ),
        });
    }
}

/// Rule 5: `DEFAULT_ARTIFACTS` in the bench gate binary must name exactly
/// the `BENCH_*.json` files committed at the workspace root.
pub fn check_bench_artifacts(root: &Path) -> Vec<Violation> {
    let gate_rel = "crates/bench/src/bin/bench_gate.rs";
    let gate_path = root.join(gate_rel);
    let mut out = Vec::new();
    let text = match fs::read_to_string(&gate_path) {
        Ok(t) => t,
        Err(e) => {
            out.push(Violation {
                file: gate_rel.to_string(),
                line: 1,
                rule: "bench-artifacts",
                msg: format!("cannot read bench gate source: {e}"),
            });
            return out;
        }
    };
    // Collect "BENCH_*.json" string literals between DEFAULT_ARTIFACTS and
    // the closing `];`.
    let mut listed: Vec<(String, usize)> = Vec::new();
    let mut decl_line = 1;
    let mut in_decl = false;
    for (idx, raw) in text.lines().enumerate() {
        let code = strip_comment(raw);
        if !in_decl {
            if code.contains("DEFAULT_ARTIFACTS") && code.contains('[') {
                in_decl = true;
                decl_line = idx + 1;
            } else {
                continue;
            }
        }
        let mut rest = code.as_str();
        while let Some(open) = rest.find('"') {
            let tail = &rest[open + 1..];
            match tail.find('"') {
                Some(close) => {
                    let lit = &tail[..close];
                    if lit.starts_with("BENCH_") && lit.ends_with(".json") {
                        listed.push((lit.to_string(), idx + 1));
                    }
                    rest = &tail[close + 1..];
                }
                None => break,
            }
        }
        if code.contains("];") {
            break;
        }
    }
    if listed.is_empty() {
        out.push(Violation {
            file: gate_rel.to_string(),
            line: decl_line,
            rule: "bench-artifacts",
            msg: "could not locate the DEFAULT_ARTIFACTS list".to_string(),
        });
        return out;
    }
    // The committed artifacts at the workspace root.
    let mut committed: Vec<String> = Vec::new();
    if let Ok(entries) = fs::read_dir(root) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                committed.push(name);
            }
        }
    }
    for (name, line) in &listed {
        if !committed.iter().any(|c| c == name) {
            out.push(Violation {
                file: gate_rel.to_string(),
                line: *line,
                rule: "bench-artifacts",
                msg: format!("DEFAULT_ARTIFACTS lists `{name}` but it is not committed at the workspace root"),
            });
        }
    }
    for name in &committed {
        if !listed.iter().any(|(l, _)| l == name) {
            out.push(Violation {
                file: gate_rel.to_string(),
                line: decl_line,
                rule: "bench-artifacts",
                msg: format!("committed artifact `{name}` is missing from DEFAULT_ARTIFACTS"),
            });
        }
    }
    out
}

/// Recursively collect `.rs` files under `dir`, appending to `acc`.
fn collect_rs(dir: &Path, acc: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, acc);
        } else if path.extension().is_some_and(|e| e == "rs") {
            acc.push(path);
        }
    }
}

/// Run every rule over the workspace rooted at `root`. Returns all
/// violations, sorted by file then line.
pub fn check_workspace(root: &Path) -> Vec<Violation> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates_dir) else {
        return vec![Violation {
            file: "crates".to_string(),
            line: 1,
            rule: "workspace",
            msg: format!("cannot read {}", crates_dir.display()),
        }];
    };
    // Scan `crates/**/src/**/*.rs` (including `crates/shims/*/src`).
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let src = path.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files);
        } else {
            // One level deeper: crates/shims/<name>/src.
            if let Ok(subs) = fs::read_dir(&path) {
                for sub in subs.flatten() {
                    let nested = sub.path().join("src");
                    if nested.is_dir() {
                        collect_rs(&nested, &mut files);
                    }
                }
            }
        }
    }
    files.sort();
    let mut out = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        match fs::read_to_string(path) {
            Ok(text) => out.extend(check_source(&rel, &text)),
            Err(e) => out.push(Violation {
                file: rel,
                line: 1,
                rule: "workspace",
                msg: format!("cannot read file: {e}"),
            }),
        }
    }
    out.extend(check_bench_artifacts(root));
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Fixtures build banned tokens with `format!`/concat so scanning THIS
    // file (rule 3 applies to test code too) stays clean.

    /// Run `check_source` on a fixture, prefixing the module docs rule 6
    /// demands so each test exercises only the rule it targets.
    fn rules_hit(rel: &str, text: &str) -> Vec<&'static str> {
        let documented = format!("//! Fixture module.\n\n{text}");
        check_source(rel, &documented)
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn raw_lock_flags_parking_lot_import() {
        let src = "use parking_lot::{Mutex, RwLock};\n";
        assert_eq!(rules_hit("crates/core/src/shared.rs", src), ["raw-lock"]);
    }

    #[test]
    fn raw_lock_flags_std_sync_mutex_and_condvar() {
        let src = "use std::sync::{Condvar, Mutex};\n";
        assert_eq!(
            rules_hit("crates/serve/src/admission.rs", src),
            ["raw-lock"]
        );
    }

    #[test]
    fn raw_lock_ignores_ordered_wrappers_and_arc() {
        let src = "use std::sync::Arc;\nuse deeplens_analyze::sync::OrderedMutex;\nstruct S { m: OrderedMutex<u32> }\n";
        assert!(rules_hit("crates/core/src/shared.rs", src).is_empty());
    }

    #[test]
    fn raw_lock_respects_whitelist_and_tests() {
        let src = "use std::sync::Mutex;\n";
        assert!(rules_hit("crates/analyze/src/sync.rs", src).is_empty());
        let test_src = format!("{CFG_TEST}\nuse std::sync::Mutex;\n");
        assert!(rules_hit("crates/core/src/shared.rs", &test_src).is_empty());
    }

    #[test]
    fn serve_panic_flags_unwrap_expect_panic() {
        let src = format!(
            "fn f() {{ x{UNWRAP_CALL}; y{EXPECT_CALL}\"boom\"); {PANIC_MACRO}(\"no\"); }}\n"
        );
        let hits = rules_hit("crates/serve/src/server.rs", &src);
        assert_eq!(hits, ["serve-panic", "serve-panic", "serve-panic"]);
    }

    #[test]
    fn serve_panic_only_applies_to_serve_non_test() {
        let src = format!("fn f() {{ x{UNWRAP_CALL}; }}\n");
        assert!(rules_hit("crates/core/src/session.rs", &src).is_empty());
        let test_src = format!("{CFG_TEST}\nfn f() {{ x{UNWRAP_CALL}; }}\n");
        assert!(rules_hit("crates/serve/src/server.rs", &test_src).is_empty());
    }

    #[test]
    fn serve_panic_ignores_doc_comments() {
        let src = format!("/// Example: `conn{UNWRAP_CALL}` is fine in docs.\nfn f() {{}}\n");
        assert!(rules_hit("crates/serve/src/protocol.rs", &src).is_empty());
    }

    #[test]
    fn debug_macros_flagged_everywhere_even_in_tests() {
        let src = format!("{CFG_TEST}\nfn f() {{ {TODO_MACRO}() }}\n");
        assert_eq!(
            rules_hit("crates/index/src/rtree.rs", &src),
            ["no-debug-macro"]
        );
        let src2 = format!("fn g() {{ {DBG_MACRO}(x); {UNIMPLEMENTED_MACRO}() }}\n");
        assert_eq!(
            rules_hit("crates/exec/src/pool.rs", &src2),
            ["no-debug-macro", "no-debug-macro"]
        );
    }

    #[test]
    fn allow_without_justification_flagged() {
        let src = format!("{ALLOW_OUTER}dead_code)]\nfn unused() {{}}\n");
        assert_eq!(
            rules_hit("crates/index/src/rtree.rs", &src),
            ["allow-justification"]
        );
    }

    #[test]
    fn allow_with_comment_above_or_trailing_passes() {
        let above = format!(
            "// kept for symmetry with len()\n{ALLOW_OUTER}dead_code)]\nfn unused() {{}}\n"
        );
        assert!(rules_hit("crates/index/src/rtree.rs", &above).is_empty());
        let trailing = format!("{ALLOW_OUTER}dead_code)] // kept for symmetry\nfn unused() {{}}\n");
        assert!(rules_hit("crates/index/src/rtree.rs", &trailing).is_empty());
    }

    #[test]
    fn module_doc_required_as_first_non_blank_line() {
        // `check_source` directly (not `rules_hit`) — these fixtures test
        // the module header itself.
        let undocumented = "use std::fmt;\nfn f() {}\n";
        let hits: Vec<_> = check_source("crates/core/src/ops.rs", undocumented)
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect();
        assert_eq!(hits, [("module-doc", 1)]);

        // Leading blank lines don't count; the violation names the first
        // non-blank line.
        let late = "\n\nuse std::fmt;\n";
        let hits: Vec<_> = check_source("crates/core/src/ops.rs", late)
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect();
        assert_eq!(hits, [("module-doc", 3)]);

        // `///` item docs are not module docs.
        let item_doc = "/// Item doc.\nfn f() {}\n";
        assert_eq!(
            check_source("crates/core/src/ops.rs", item_doc)
                .into_iter()
                .map(|v| v.rule)
                .collect::<Vec<_>>(),
            ["module-doc"]
        );

        let empty = "";
        assert_eq!(
            check_source("crates/core/src/ops.rs", empty)
                .into_iter()
                .map(|v| v.rule)
                .collect::<Vec<_>>(),
            ["module-doc"]
        );
    }

    #[test]
    fn module_doc_passes_documented_and_exempts_shims() {
        let documented = "//! Module docs.\nuse std::fmt;\n";
        assert!(check_source("crates/core/src/ops.rs", documented).is_empty());
        let indented = "  //! Indented docs still count.\nfn f() {}\n";
        assert!(check_source("crates/exec/src/pool.rs", indented).is_empty());
        let undocumented = "pub struct Mirror;\n";
        assert!(check_source("crates/shims/proptest/src/lib.rs", undocumented).is_empty());
    }

    #[test]
    fn comment_stripping_keeps_urls_in_strings() {
        let line = "let url = \"https://example.com\"; // trailing note";
        assert_eq!(strip_comment(line), "let url = \"https://example.com\"; ");
        let quote_char = "if c == '\"' { nested = true } // quote literal";
        assert_eq!(strip_comment(quote_char), "if c == '\"' { nested = true } ");
    }

    #[test]
    fn word_boundary_rejects_ordered_prefix() {
        assert!(has_word("std::sync::Mutex<u32>", "Mutex"));
        assert!(!has_word("OrderedMutex<u32>", "Mutex"));
        assert!(has_word("MutexGuard<'a, T>", "Mutex"));
    }

    #[test]
    fn bench_artifact_drift_detected_both_directions() {
        let root = std::env::temp_dir().join(format!(
            "tidy-bench-fixture-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let gate_dir = root.join("crates/bench/src/bin");
        fs::create_dir_all(&gate_dir).expect("fixture dirs");
        fs::write(
            gate_dir.join("bench_gate.rs"),
            "const DEFAULT_ARTIFACTS: [&str; 2] = [\n    \"BENCH_ops.json\",\n    \"BENCH_gone.json\",\n];\n",
        )
        .expect("fixture gate");
        fs::write(root.join("BENCH_ops.json"), "{}").expect("fixture artifact");
        fs::write(root.join("BENCH_extra.json"), "{}").expect("fixture artifact");
        let violations = check_bench_artifacts(&root);
        let msgs: Vec<&str> = violations.iter().map(|v| v.msg.as_str()).collect();
        assert_eq!(violations.len(), 2, "violations: {msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("BENCH_gone.json")));
        assert!(msgs.iter().any(|m| m.contains("BENCH_extra.json")));
        fs::remove_dir_all(&root).expect("fixture cleanup");
    }

    #[test]
    fn clean_tree_snippet_passes_all_rules() {
        let src = "use deeplens_analyze::sync::{LockRank, OrderedRwLock};\n\
                   struct Catalog { shards: Vec<OrderedRwLock<u32>> }\n";
        assert!(rules_hit("crates/core/src/shared.rs", src).is_empty());
    }
}
