//! Workspace hygiene lint, run in CI as a blocking job:
//!
//! ```text
//! cargo run -p deeplens-analyze --bin tidy
//! ```
//!
//! Scans `crates/**/src/**/*.rs` with the rules in [`deeplens_analyze::tidy`]
//! and exits non-zero if any violation is found, printing one
//! `file:line: [rule] message` diagnostic per finding.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    // crates/analyze -> crates -> workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/analyze");
    let violations = deeplens_analyze::tidy::check_workspace(root);
    if violations.is_empty() {
        println!("tidy: workspace clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("tidy: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
