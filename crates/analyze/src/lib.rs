//! # deeplens-analyze
//!
//! Analysis infrastructure for the DeepLens workspace, in two halves:
//!
//! * [`sync`] — the **runtime half**: ranked lock wrappers
//!   ([`sync::OrderedMutex`], [`sync::OrderedRwLock`],
//!   [`sync::OrderedCondvar`]) tagged with a [`sync::LockRank`]. Under
//!   `debug_assertions` a thread-local held-rank stack validates that every
//!   acquisition respects the workspace's documented lock partial order —
//!   and that at most one same-rank shard latch is held — panicking with
//!   both lock names and the held stack on an inversion. In release builds
//!   the wrappers compile to a zero-cost passthrough over `std::sync`.
//! * [`tidy`] — the **static half**: a hand-rolled line/token scanner over
//!   `crates/**/src/**/*.rs` (in the spirit of rust-lang/rust's `tidy`)
//!   enforcing the workspace hygiene rules: no raw lock types outside the
//!   [`sync`] module, no panicking calls in serving request paths, no
//!   `todo!`/`unimplemented!`/`dbg!` anywhere, justified `#[allow]`s, and
//!   bench-gate artifact lists in sync with the committed `BENCH_*.json`
//!   files. CI runs it as a blocking job via
//!   `cargo run -p deeplens-analyze --bin tidy`.
//!
//! This crate sits at the bottom of the workspace dependency graph (it
//! depends on nothing but `std`), so every locking crate — core, storage,
//! exec, serve — can adopt the wrappers without a cycle.

#![deny(missing_docs)]

pub mod sync;
pub mod tidy;

pub use sync::{LockRank, OrderedCondvar, OrderedMutex, OrderedRwLock};
