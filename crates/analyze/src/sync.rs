//! Ranked lock wrappers — a lockdep for the DeepLens workspace.
//!
//! Every lock in the engine's concurrent core is tagged with a [`LockRank`].
//! The ranks form a single total order (outermost first); a thread may only
//! acquire a lock whose rank is **strictly greater** than every rank it
//! already holds. Because all threads acquire in ascending rank order, no
//! cycle of waits can form and deadlock is impossible. Same-rank acquisition
//! is also rejected: sharded structures (catalog shards, buffer shards) allow
//! at most one shard latch per thread at a time.
//!
//! Under `debug_assertions` each thread keeps a stack of `(rank, name)` pairs
//! for the locks it holds; a violating acquisition panics with the offending
//! lock, the conflicting held lock, and the full held stack. In release
//! builds the check is compiled out entirely and [`OrderedMutex`] /
//! [`OrderedRwLock`] are zero-cost passthroughs over `std::sync`.
//!
//! Poisoning is intentionally transparent (a panic while holding a lock does
//! not poison it for other threads), matching the `parking_lot` semantics the
//! workspace previously relied on: guards are recovered with
//! `unwrap_or_else(|e| e.into_inner())`.

use std::fmt;
use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(debug_assertions)]
use std::cell::RefCell;

/// The workspace-wide lock order, outermost (acquired first) to innermost.
///
/// A thread holding a lock of rank `R` may only acquire locks of rank
/// strictly greater than `R`. The discriminants are the single source of
/// truth for the ordering rules documented in `core::shared`,
/// `storage::buffer`, and `serve::admission`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum LockRank {
    /// `serve::admission` controller state (queue + inflight cost). Held only
    /// within the admission controller, but ranked outermost because a queued
    /// request blocks here before touching any engine state.
    AdmissionQueue = 0,
    /// `serve::server` connection-handle registry. Taken by the accept loop
    /// and `stop()`; never nested inside engine locks.
    ConnectionRegistry = 1,
    /// `core::shared` session-slot allocator (`SharedCatalog::session_slots`).
    SessionSlots = 2,
    /// One shard of the name-sharded `core::shared::SharedCatalog` map. At
    /// most one shard latch per thread (same-rank acquisition panics).
    CatalogShard = 3,
    /// The `core::shared` lineage store. May be taken while holding a single
    /// `CatalogShard` latch (the materialize path), never the reverse.
    Lineage = 4,
    /// A session's decoded-frame cache (`core::session`). Leaf with respect
    /// to catalog state: never held across catalog or buffer acquisitions.
    FrameCache = 5,
    /// One shard of the latch-sharded `storage::buffer::BufferPool`. At most
    /// one shard latch per thread.
    BufferShard = 6,
    /// The `storage::buffer` pager (backing-store allocator). May be taken
    /// while holding a single `BufferShard` latch (flush/evict), never the
    /// reverse.
    Pager = 7,
    /// `exec::pool` per-dispatch result collector. A worker takes it briefly
    /// at the end of a morsel batch, holding nothing else.
    WorkerResults = 8,
    /// One shard of the `core::cache` snapshot-keyed result cache. Innermost
    /// leaf: lookups and inserts hold exactly this lock, and cached values
    /// are cloned out before any other lock can be wanted.
    ResultCacheShard = 9,
}

impl fmt::Display for LockRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}(rank {})", *self as u8)
    }
}

#[cfg(debug_assertions)]
thread_local! {
    /// Stack of locks held by the current thread, in acquisition order.
    static HELD: RefCell<Vec<(LockRank, &'static str)>> = const { RefCell::new(Vec::new()) };
}

/// Registration of one held lock on the current thread's rank stack.
///
/// Acquired *before* blocking on the underlying primitive (the violation is
/// the attempt to acquire out of order, whether or not it would deadlock this
/// time) and released from the stack when the guard drops.
#[cfg(debug_assertions)]
#[derive(Debug)]
struct HeldToken {
    rank: LockRank,
    name: &'static str,
}

#[cfg(debug_assertions)]
impl HeldToken {
    fn acquire(rank: LockRank, name: &'static str) -> Self {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(top_rank, top_name)) = held.iter().max_by_key(|&&(r, _)| r) {
                if top_rank == rank {
                    panic!(
                        "lock-rank violation: double acquisition at rank {rank}: \
                         attempted to lock `{name}` while already holding \
                         `{top_name}` (held stack: {held:?})"
                    );
                }
                if top_rank > rank {
                    panic!(
                        "lock-order inversion: attempted to lock `{name}` ({rank}) \
                         while holding `{top_name}` ({top_rank}); locks must be \
                         acquired in ascending rank order (held stack: {held:?})"
                    );
                }
            }
            held.push((rank, name));
        });
        HeldToken { rank, name }
    }
}

#[cfg(debug_assertions)]
impl Drop for HeldToken {
    fn drop(&mut self) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            // Guards may drop in any order; remove the matching entry from
            // the top down.
            if let Some(pos) = held
                .iter()
                .rposition(|&(r, n)| r == self.rank && std::ptr::eq(n, self.name))
            {
                held.remove(pos);
            }
        });
    }
}

/// Snapshot of the current thread's held-lock stack, for diagnostics and
/// tests. Always empty in release builds (the checker is compiled out).
pub fn held_locks() -> Vec<(LockRank, &'static str)> {
    #[cfg(debug_assertions)]
    {
        HELD.with(|held| held.borrow().clone())
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// A mutex tagged with a [`LockRank`], enforcing the workspace lock order
/// under `debug_assertions`. Poison-transparent, like `parking_lot::Mutex`.
pub struct OrderedMutex<T: ?Sized> {
    rank: LockRank,
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Create a new ordered mutex. `name` appears in violation panics.
    pub const fn new(rank: LockRank, name: &'static str, value: T) -> Self {
        OrderedMutex {
            rank,
            name,
            inner: Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// Acquire the mutex, blocking the current thread. Panics under
    /// `debug_assertions` if the acquisition violates the rank order.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = HeldToken::acquire(self.rank, self.name);
        OrderedMutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
            #[cfg(debug_assertions)]
            token,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// The rank this mutex was tagged with.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// The diagnostic name this mutex was tagged with.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("rank", &self.rank)
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard for an [`OrderedMutex`]. Dropping it releases the lock and pops the
/// rank from the thread's held stack.
// Note: this struct has no `Drop` impl of its own — each field cleans itself
// up — so `OrderedCondvar::wait` can move the fields apart to release the
// rank token while the thread is parked.
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    inner: MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    token: HeldToken,
}

impl<T: ?Sized> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock tagged with a [`LockRank`], enforcing the workspace
/// lock order under `debug_assertions`. Both `read()` and `write()` are
/// rank-checked: a read acquisition out of order is just as much a potential
/// deadlock as a write. Poison-transparent.
pub struct OrderedRwLock<T: ?Sized> {
    rank: LockRank,
    name: &'static str,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Create a new ordered rwlock. `name` appears in violation panics.
    pub const fn new(rank: LockRank, name: &'static str, value: T) -> Self {
        OrderedRwLock {
            rank,
            name,
            inner: RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    /// Acquire shared (read) access. Rank-checked under `debug_assertions`.
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = HeldToken::acquire(self.rank, self.name);
        OrderedReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
            #[cfg(debug_assertions)]
            _token: token,
        }
    }

    /// Acquire exclusive (write) access. Rank-checked under
    /// `debug_assertions`.
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = HeldToken::acquire(self.rank, self.name);
        OrderedWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
            #[cfg(debug_assertions)]
            _token: token,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// The rank this lock was tagged with.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// The diagnostic name this lock was tagged with.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("rank", &self.rank)
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Shared-access guard for an [`OrderedRwLock`].
pub struct OrderedReadGuard<'a, T: ?Sized> {
    inner: RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: HeldToken,
}

impl<T: ?Sized> std::ops::Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-access guard for an [`OrderedRwLock`].
pub struct OrderedWriteGuard<'a, T: ?Sized> {
    inner: RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: HeldToken,
}

impl<T: ?Sized> std::ops::Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable paired with [`OrderedMutex`].
///
/// While a thread is parked in [`wait`](OrderedCondvar::wait) it does not
/// hold the mutex, so the wrapper pops the rank token for the duration of
/// the wait and re-registers it when the thread wakes holding the lock
/// again. Without this, a long wait would wedge the waiting thread's rank
/// stack and produce false "double acquisition" reports on wake-ups that
/// re-enter the same controller.
#[derive(Debug, Default)]
pub struct OrderedCondvar {
    inner: Condvar,
}

impl OrderedCondvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        OrderedCondvar {
            inner: Condvar::new(),
        }
    }

    /// Block the current thread until notified, releasing `guard` while
    /// parked. Returns a guard for the re-acquired lock.
    pub fn wait<'a, T>(&self, guard: OrderedMutexGuard<'a, T>) -> OrderedMutexGuard<'a, T> {
        // Move the fields apart: the std guard goes to Condvar::wait, the
        // rank token is dropped so the stack reflects "not held" while
        // parked.
        let OrderedMutexGuard {
            inner,
            #[cfg(debug_assertions)]
            token,
        } = guard;
        #[cfg(debug_assertions)]
        let (rank, name) = (token.rank, token.name);
        #[cfg(debug_assertions)]
        drop(token);
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        OrderedMutexGuard {
            inner,
            #[cfg(debug_assertions)]
            token: HeldToken::acquire(rank, name),
        }
    }

    /// Wake one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all threads blocked on this condition variable.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_acquisition_is_legal() {
        let outer = OrderedMutex::new(LockRank::SessionSlots, "slots", 1u32);
        let mid = OrderedRwLock::new(LockRank::CatalogShard, "shard-0", 2u32);
        let inner = OrderedMutex::new(LockRank::Pager, "pager", 3u32);
        let a = outer.lock();
        let b = mid.read();
        let c = inner.lock();
        assert_eq!(*a + *b + *c, 6);
        drop((a, b, c));
        assert!(held_locks().is_empty());
    }

    #[test]
    fn out_of_order_release_keeps_stack_consistent() {
        let a = OrderedMutex::new(LockRank::CatalogShard, "shard-0", ());
        let b = OrderedMutex::new(LockRank::Lineage, "lineage", ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // release outer first
        drop(gb);
        assert!(held_locks().is_empty());
        // Stack is clean: a fresh low-rank acquisition must succeed.
        let _ = a.lock();
    }

    #[test]
    fn reacquire_after_release_is_legal() {
        let shard = OrderedRwLock::new(LockRank::CatalogShard, "shard-0", 0u32);
        for _ in 0..3 {
            let g = shard.write();
            drop(g);
        }
        assert!(held_locks().is_empty());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn rank_inversion_panics() {
        let pager = OrderedMutex::new(LockRank::Pager, "pager", ());
        let shard = OrderedRwLock::new(LockRank::BufferShard, "buffer-shard-0", ());
        let _g = pager.lock();
        let _h = shard.write(); // Pager > BufferShard: inversion
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "double acquisition")]
    fn double_same_rank_panics() {
        let s0 = OrderedRwLock::new(LockRank::CatalogShard, "shard-0", ());
        let s1 = OrderedRwLock::new(LockRank::CatalogShard, "shard-1", ());
        let _g = s0.read();
        let _h = s1.read(); // two shard latches on one thread
    }

    #[test]
    fn condvar_wait_releases_rank_token() {
        use std::sync::Arc;
        let pair = Arc::new((
            OrderedMutex::new(LockRank::AdmissionQueue, "admission", false),
            OrderedCondvar::new(),
        ));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    ready = cv.wait(ready);
                }
            })
        };
        // Give the waiter time to park, then flip the flag. If `wait` failed
        // to release the mutex this would deadlock.
        std::thread::sleep(std::time::Duration::from_millis(20));
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        waiter.join().expect("waiter thread");
        assert!(held_locks().is_empty());
    }

    #[test]
    fn poisoned_lock_is_transparent() {
        use std::sync::Arc;
        let m = Arc::new(OrderedMutex::new(LockRank::FrameCache, "cache", 7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A panic while holding the lock must not wedge other threads.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rank_order_matches_discriminants() {
        use LockRank::*;
        let order = [
            AdmissionQueue,
            ConnectionRegistry,
            SessionSlots,
            CatalogShard,
            Lineage,
            FrameCache,
            BufferShard,
            Pager,
            WorkerResults,
            ResultCacheShard,
        ];
        for pair in order.windows(2) {
            assert!(pair[0] < pair[1], "{} must precede {}", pair[0], pair[1]);
        }
    }
}
