//! Serving quickstart: stand up the TCP query front end in-process, drive
//! it over loopback with the wire client, and check every reply — the
//! release smoke CI runs against the `deeplens-serve` crate.
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```

use std::sync::Arc;

use deeplens::core::batch::{BatchQuery, BatchResult};
use deeplens::core::patch::{ImgRef, Patch};
use deeplens::core::shared::SharedCatalog;
use deeplens::serve::{serve, Client, ServerConfig};

/// Deterministic feature patches over the shared catalog's id allocator.
fn feat_patches(catalog: &SharedCatalog, n: u64, dim: usize, seed: u64) -> Vec<Patch> {
    let mut ids = catalog.reserve_patch_ids(n);
    let mut s = seed;
    (0..n)
        .map(|i| {
            let f: Vec<f32> = (0..dim)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (s >> 33) as f32 / (1u64 << 31) as f32 * 10.0
                })
                .collect();
            Patch::features(ids.alloc(), ImgRef::frame("cam", i), f)
        })
        .collect()
}

fn main() {
    // A shared catalog with two feature collections, served on an ephemeral
    // loopback port with the default admission knobs.
    let catalog = Arc::new(SharedCatalog::new());
    catalog.materialize("dashcams", feat_patches(&catalog, 80, 6, 7));
    catalog.materialize("fleet", feat_patches(&catalog, 240, 6, 11));
    let mut server = serve(catalog, ServerConfig::default()).expect("bind server");
    println!("serving on {}", server.local_addr());

    let mut client = Client::connect(server.local_addr().to_string()).expect("connect");
    client.ping().expect("ping");

    // Remote DDL: build a Ball-Tree index on the served catalog…
    client.build_index("fleet", "by_feat").expect("build index");

    // …then a mixed batch: similarity join, dedup, and a probe through the
    // index just built.
    let results = client
        .batch(vec![
            BatchQuery::SimilarityJoin {
                left: "dashcams".into(),
                right: "fleet".into(),
                tau: 5.0,
                predicate: None,
            },
            BatchQuery::Dedup {
                collection: "dashcams".into(),
                tau: 3.0,
            },
            BatchQuery::IndexProbe {
                collection: "fleet".into(),
                index: "by_feat".into(),
                probe: vec![5.0; 6],
                tau: 2.5,
            },
        ])
        .expect("batch");
    assert_eq!(results.len(), 3, "one result per query");
    let (pairs, clusters, hits) = match &results[..] {
        [BatchResult::Pairs(p), BatchResult::Clusters(c), BatchResult::Hits(h)] => (p, c, h),
        other => panic!("unexpected result shapes: {other:?}"),
    };
    assert!(!pairs.is_empty(), "tau 5 must match across the corpora");
    assert!(!hits.is_empty(), "probe near the feature centroid must hit");
    println!(
        "join pairs {}, dedup clusters {}, probe hits {}",
        pairs.len(),
        clusters.len(),
        hits.len()
    );

    // Remote writes publish through the shared catalog and are immediately
    // queryable on the same connection.
    client
        .materialize(
            "alerts",
            vec![
                vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                vec![0.9, 0.1, 0.0, 0.0, 0.0, 0.0],
            ],
        )
        .expect("materialize");
    let dedup = client
        .batch(vec![BatchQuery::Dedup {
            collection: "alerts".into(),
            tau: 0.5,
        }])
        .expect("dedup alerts");
    assert_eq!(dedup, vec![BatchResult::Clusters(vec![vec![0, 1]])]);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.collections, 3);
    assert_eq!(stats.shed, 0);
    println!(
        "server stats: {} collections, {} admitted, {} shed",
        stats.collections, stats.admitted, stats.shed
    );

    drop(client);
    server.stop();
    println!("serve quickstart OK");
}
