//! Shared-scan ETL: two featurization pipelines ingest one encoded video
//! with a **single decode pass** (`Session::ingest_batch`).
//!
//! 1. Render a small traffic scene and encode it as one sequential GOP
//!    (the paper's "Encoded File" — the decode-heaviest layout).
//! 2. Register the stream with an ingest batch and enqueue two pipelines:
//!    tile-level color features and frame-level features.
//! 3. Run the batch: the frame window is decoded exactly once and both
//!    pipelines fan out over the shared frames as morsels.
//! 4. Query one of the outputs to show the collections are first-class.
//!
//! Run with: `cargo run --release --example shared_scan_ingest`

use deeplens::codec::video::{encode_video, frames_decoded, VideoConfig};
use deeplens::codec::Quality;
use deeplens::core::etl::{FeaturizeTransformer, TileGenerator, WholeImageGenerator};
use deeplens::prelude::*;
use deeplens::vision::datasets::TrafficDataset;

fn main() {
    // 1. A tiny traffic world, encoded as one sequential stream.
    let ds = TrafficDataset::generate(0.002, 11);
    let frames = ds.render_all();
    let bytes = encode_video(&frames, VideoConfig::sequential(Quality::High)).expect("encode clip");
    println!(
        "encoded {} frames of {}x{} into {} bytes (sequential GOP)",
        frames.len(),
        ds.scene.width,
        ds.scene.height,
        bytes.len()
    );

    // 2. Two pipelines over the same source: tile features + frame features.
    let session = Session::ephemeral().expect("session");
    let mut batch = session.ingest_batch();
    batch
        .add_encoded_source("traffic", bytes)
        .expect("register source");
    let window = 0..frames.len() as u64;
    batch
        .ingest(
            Pipeline::new(Box::new(TileGenerator { tile: 16 })).then(Box::new(
                FeaturizeTransformer {
                    label: "tile-color".into(),
                    dim: 3,
                    f: Box::new(|img| img.mean_color().to_vec()),
                },
            )),
            "traffic",
            window.clone(),
            "tile_feats",
        )
        .expect("enqueue tile pipeline");
    batch
        .ingest(
            Pipeline::new(Box::new(WholeImageGenerator)).then(Box::new(FeaturizeTransformer {
                label: "frame-color".into(),
                dim: 3,
                f: Box::new(|img| img.mean_color().to_vec()),
            })),
            "traffic",
            window,
            "frame_feats",
        )
        .expect("enqueue frame pipeline");

    // 3. One decode pass serves both pipelines.
    let decoded_before = frames_decoded();
    let counts = batch.run().expect("ingest batch");
    let decoded = frames_decoded() - decoded_before;
    println!(
        "ingested {} tile patches + {} frame patches with {} decoded frames",
        counts[0], counts[1], decoded
    );
    assert_eq!(
        decoded,
        frames.len() as u64,
        "the shared scan must decode each frame exactly once"
    );

    // 4. The outputs are ordinary indexed collections.
    session
        .catalog
        .build_ball_index("frame_feats", "by_color", 1)
        .expect("index");
    let col = session.catalog.snapshot("frame_feats").expect("snapshot");
    let probe = col.patches[0].data.features().expect("features").to_vec();
    let similar = col
        .lookup_similar("by_color", &probe, 0.05)
        .expect("indexed");
    println!(
        "frames with near-identical global color to frame 0: {} of {}",
        similar.len(),
        col.len()
    );
}
