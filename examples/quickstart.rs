//! Quickstart: the DeepLens workflow end-to-end on a tiny synthetic video.
//!
//! 1. Render a small traffic scene (the data source).
//! 2. Store it in a Segmented File (physical layout).
//! 3. Run the simulated object detector (ETL → patches).
//! 4. Materialize the patches, build an index, and run a query.
//!
//! Run with: `cargo run --example quickstart`

use deeplens::codec::Quality;
use deeplens::prelude::*;
use deeplens::storage::layout::{SegmentedFile, VideoStore};
use deeplens::vision::datasets::TrafficDataset;
use deeplens::vision::detector::ObjectDetector;
use deeplens::vision::features::joint_histogram;
use deeplens_exec::Device;

fn main() {
    // 1. A tiny traffic world: ~140 frames of cars and pedestrians.
    let ds = TrafficDataset::generate(0.004, 7);
    let frames = ds.render_all();
    println!(
        "rendered {} frames of {}x{}",
        frames.len(),
        ds.scene.width,
        ds.scene.height
    );

    // 2. Physical layout: encoded clips of 24 frames in a B+Tree.
    let session = Session::ephemeral().expect("session");
    let mut store = SegmentedFile::ingest(
        session.storage_path("traffic.dlb"),
        &frames,
        24,
        Quality::High,
    )
    .expect("ingest");
    println!(
        "segmented file: {} bytes for {} frames ({}x smaller than raw)",
        store.byte_size(),
        store.frame_count(),
        frames.iter().map(|f| f.byte_size() as u64).sum::<u64>() / store.byte_size().max(1)
    );

    // 3. ETL: decode a window, detect objects, featurize into patches.
    let window = store.scan_range(0, store.frame_count()).expect("scan");
    let detector = ObjectDetector::default_on(Device::Avx);
    let mut patches = Vec::new();
    for (t, frame) in &window {
        for det in detector.detect(&ds.scene, *t, frame) {
            let crop = frame.crop(det.bbox.x, det.bbox.y, det.bbox.w, det.bbox.h);
            patches.push(
                Patch::features(
                    session.catalog.next_patch_id(),
                    ImgRef::frame("traffic", *t),
                    joint_histogram(&crop, 4),
                )
                .with_meta("label", det.label.as_str())
                .with_meta("frameno", *t as i64)
                .with_meta("score", det.score),
            );
        }
    }
    println!("detector produced {} patches", patches.len());

    // 4. Materialize, index, query: count frames with at least one vehicle.
    session.catalog.materialize("dets", patches);
    session
        .catalog
        .build_hash_index("dets", "by_label", "label")
        .expect("materialized");
    let col = session.catalog.snapshot("dets").expect("materialized");
    let mut vehicle_frames = std::collections::HashSet::new();
    for label in ["car", "truck"] {
        for pos in col
            .lookup_eq("by_label", &Value::from(label))
            .expect("indexed")
        {
            if let Some(f) = col.patches[pos as usize].get_int("frameno") {
                vehicle_frames.insert(f);
            }
        }
    }
    println!(
        "q2 answer: {} of {} frames contain a vehicle (ground truth: {})",
        vehicle_frames.len(),
        frames.len(),
        ds.frames_with_vehicle().len()
    );
}
