//! Document search over a personal image corpus (the paper's q5 workload):
//! OCR every image, store the recognized strings as patches, and find the
//! first image containing a target string — plus a near-duplicate sweep
//! (q1) over the same corpus.
//!
//! Run with: `cargo run --example document_search`

use deeplens::core::ops;
use deeplens::prelude::*;
use deeplens::vision::datasets::PcDataset;
use deeplens::vision::features::joint_histogram;
use deeplens::vision::ocr::OcrEngine;
use deeplens::vision::scene::BBox;
use deeplens_exec::Device;

fn main() {
    let ds = PcDataset::generate(0.15, 4242);
    println!(
        "PC corpus: {} images, {} planted near-duplicate pairs",
        ds.images.len(),
        ds.duplicate_pairs.len()
    );
    let mut catalog = Catalog::new();

    // ETL: whole-image feature patches + OCR string patches.
    let ocr = OcrEngine::default_on(Device::Avx);
    let mut image_patches = Vec::new();
    let mut strings = Vec::new();
    for (i, img) in ds.images.iter().enumerate() {
        let img_patch = Patch::features(
            catalog.next_patch_id(),
            ImgRef::frame("pc", i as u64),
            joint_histogram(img, 4),
        )
        .with_meta("imgno", i as i64);
        for (line, truth) in ds.texts[i].iter().enumerate() {
            let region = BBox::new(0, line as i64 * 8, img.width(), 12);
            if let Some(res) = ocr.recognize(img, &region, truth, (i * 100 + line) as u64) {
                strings.push(
                    img_patch
                        .derive(catalog.next_patch_id(), PatchData::Empty)
                        .with_meta("text", res.text.as_str())
                        .with_meta("imgno", i as i64),
                );
            }
        }
        image_patches.push(img_patch);
    }
    println!("OCR extracted {} strings", strings.len());

    // q5: first image whose OCR output contains the needle.
    let needle = "DEEP";
    let hit = strings
        .iter()
        .filter(|p| {
            p.get_str("text")
                .map(|t| t.contains(needle))
                .unwrap_or(false)
        })
        .filter_map(|p| p.get_int("imgno"))
        .min();
    match hit {
        Some(img) => println!("q5: first image containing '{needle}': #{img}"),
        None => println!("q5: '{needle}' not found (OCR noise can corrupt the needle)"),
    }

    // q1: near-duplicate sweep over the whole corpus.
    let pairs: Vec<(u32, u32)> =
        ops::similarity_join_balltree(&image_patches, &image_patches, 0.22, &WorkerPool::new(0))
            .into_iter()
            .filter(|(a, b)| a < b)
            .collect();
    let truth: std::collections::HashSet<(u32, u32)> = ds.duplicate_pairs.iter().copied().collect();
    let found = pairs.iter().filter(|p| truth.contains(p)).count();
    println!(
        "q1: {} near-duplicate pairs reported; {}/{} planted pairs recovered",
        pairs.len(),
        found,
        truth.len()
    );

    // Lineage: every string patch backtraces to its source image.
    catalog.materialize("pc_images", image_patches);
    catalog.materialize("pc_strings", strings.clone());
    let sample = &strings[0];
    let roots = catalog.lineage.backtrace(sample.id);
    println!(
        "lineage: string patch {:?} backtraces to {} source image(s): {:?}",
        sample.get_str("text").unwrap_or("?"),
        roots.len(),
        roots.first().map(|r| (r.source.as_str(), r.frame_no))
    );
}
