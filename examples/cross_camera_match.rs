//! Cross-camera object matching (the paper's Example 2, §2.2.2 and the
//! introduction's motivating query): given two camera feeds, find the
//! vehicles that appear in BOTH — a similarity join whose predicate reads
//! pixel content, not just metadata.
//!
//! Run with: `cargo run --example cross_camera_match`

use deeplens::core::ops;
use deeplens::prelude::*;
use deeplens::vision::datasets::TrafficDataset;
use deeplens::vision::detector::ObjectDetector;
use deeplens::vision::features::joint_histogram;
use deeplens_exec::Device;

/// ETL one camera into featurized vehicle patches.
fn etl_camera(ds: &TrafficDataset, name: &str, catalog: &mut Catalog) -> Vec<Patch> {
    let detector = ObjectDetector::default_on(Device::Avx);
    let mut patches = Vec::new();
    for t in 0..ds.num_frames {
        let frame = ds.scene.render_frame(t);
        for det in detector.detect(&ds.scene, t, &frame) {
            if !matches!(det.label.as_str(), "car" | "truck") {
                continue;
            }
            let crop = frame.crop(det.bbox.x, det.bbox.y, det.bbox.w, det.bbox.h);
            patches.push(
                Patch::features(
                    catalog.next_patch_id(),
                    ImgRef::frame(name, t),
                    joint_histogram(&crop, 4),
                )
                .with_meta("label", det.label.as_str())
                .with_meta("frameno", t as i64)
                .with_meta("gt", det.object_id.map(|v| v as i64).unwrap_or(-1)),
            );
        }
    }
    patches
}

fn main() {
    // Two cameras watching overlapping traffic: same world seed = the same
    // vehicle population, different viewpoints simulated by distinct frame
    // windows of the scene.
    let world = TrafficDataset::generate(0.006, 1234);
    let mut catalog = Catalog::new();
    let cam_a = etl_camera(&world, "camA", &mut catalog);
    let cam_b = etl_camera(&world, "camB", &mut catalog);
    println!(
        "camA: {} vehicle patches, camB: {}",
        cam_a.len(),
        cam_b.len()
    );

    // The optimizer picks the join strategy from the non-linear cost model.
    let model = CostModel::default();
    let strategy = model.recommend(cam_a.len(), cam_b.len(), 64);
    println!("cost model recommends: {strategy:?}");

    // On-the-fly Ball-Tree similarity join over the pixel-derived features,
    // with index build + probe phase fanned out over all hardware threads.
    let pool = WorkerPool::new(0);
    let pairs = ops::similarity_join_balltree(&cam_a, &cam_b, 0.22, &pool);
    println!("similarity join produced {} candidate pairs", pairs.len());

    // Resolve candidate pairs into distinct shared identities and validate
    // against ground truth (available because the world is synthetic).
    let mut shared: std::collections::HashSet<i64> = std::collections::HashSet::new();
    let mut correct = 0usize;
    for &(i, j) in &pairs {
        let (a, b) = (&cam_a[i as usize], &cam_b[j as usize]);
        let (ga, gb) = (a.get_int("gt").unwrap_or(-1), b.get_int("gt").unwrap_or(-2));
        if ga >= 0 && ga == gb {
            correct += 1;
            shared.insert(ga);
        }
    }
    let precision = correct as f64 / pairs.len().max(1) as f64;
    println!("matched {} distinct vehicles across cameras", shared.len());
    println!("pair precision vs ground truth: {precision:.2}");
}
