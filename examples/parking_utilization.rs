//! Parking-lot utilization (the paper's Example 1, §2.2.1).
//!
//! A CCTV feed watches a parking lot; we count the number of vehicles in
//! every frame with a filter + group-by aggregation over detector patches,
//! then report the utilization curve.
//!
//! Run with: `cargo run --example parking_utilization`

use deeplens::core::ops;
use deeplens::prelude::*;
use deeplens::vision::datasets::TrafficDataset;
use deeplens::vision::detector::ObjectDetector;
use deeplens_exec::Device;

fn main() {
    // The "parking lot camera": a traffic scene works structurally — cars
    // enter, sit in lanes, and leave.
    let ds = TrafficDataset::generate(0.004, 99);
    let detector = ObjectDetector::default_on(Device::Avx);
    let catalog = Catalog::new();

    // ETL: SSD-style patches per frame (paper: SSDPatch(Frame, Bbox, ...)).
    let mut patches = Vec::new();
    for t in 0..ds.num_frames {
        let frame = ds.scene.render_frame(t);
        for det in detector.detect(&ds.scene, t, &frame) {
            patches.push(
                Patch::empty(catalog.next_patch_id(), ImgRef::frame("lot", t))
                    .with_meta("label", det.label.as_str())
                    .with_meta("frameno", t as i64),
            );
        }
    }
    println!(
        "ETL: {} detections over {} frames",
        patches.len(),
        ds.num_frames
    );

    // Query: SELECT frameno, COUNT(*) WHERE label IN (car, truck) GROUP BY frameno.
    let vehicles: Vec<Patch> = ops::select(patches.into_iter(), |p| {
        matches!(p.get_str("label"), Some("car") | Some("truck"))
    })
    .collect();
    let per_frame = ops::count_group_by_int(&vehicles, "frameno");

    // Report utilization statistics.
    let occupied = per_frame.len();
    let peak = per_frame.values().copied().max().unwrap_or(0);
    let total: usize = per_frame.values().sum();
    let mean = total as f64 / ds.num_frames as f64;
    println!("frames with ≥1 vehicle : {occupied} / {}", ds.num_frames);
    println!("peak vehicles in frame : {peak}");
    println!("mean vehicles per frame: {mean:.2}");

    // A small textual utilization histogram over time buckets.
    let buckets = 12u64;
    let bucket_len = (ds.num_frames / buckets).max(1);
    println!("\nutilization over time:");
    for b in 0..buckets {
        let lo = b * bucket_len;
        let hi = ((b + 1) * bucket_len).min(ds.num_frames);
        let count: usize = (lo..hi)
            .filter_map(|t| per_frame.get(&(t as i64)))
            .copied()
            .sum();
        let avg = count as f64 / (hi - lo).max(1) as f64;
        let bar = "#".repeat((avg * 8.0).round() as usize);
        println!("  frames {lo:>5}-{hi:<5} | {bar} {avg:.2}");
    }
}
