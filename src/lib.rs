//! # DeepLens
//!
//! A from-scratch Rust reproduction of **"DeepLens: Towards a Visual Data
//! Management System"** (Krishnan, Dziedzic, Elmore — CIDR 2019).
//!
//! DeepLens manages the outputs of computer-vision models as first-class
//! database content: visual analytics are relational queries over unordered
//! collections of *patches* (featurized sub-images with metadata and
//! lineage), decoupled from physical design decisions — video encoding and
//! layout, device placement, and single-/multi-dimensional indexing.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] ([`deeplens_core`]) — patch model, type system, lineage, ETL,
//!   query operators, catalog, optimizer.
//! * [`storage`] ([`deeplens_storage`]) — pages, buffer pool, WAL, on-disk
//!   B+Tree, hash store, and the Frame/Encoded/Segmented video layouts.
//! * [`codec`] ([`deeplens_codec`]) — block-DCT image codec and
//!   GOP-structured video codec with sequential decode semantics.
//! * [`index`] ([`deeplens_index`]) — Ball-Tree, R-Tree, KD-Tree, LSH,
//!   sorted runs.
//! * [`exec`] ([`deeplens_exec`]) — CPU / vectorized / simulated-GPU
//!   execution backends.
//! * [`serve`] ([`deeplens_serve`]) — TCP query-serving front end:
//!   connection-per-session dispatch over a shared catalog with
//!   cost-weighted admission control.
//! * [`vision`] ([`deeplens_vision`]) — synthetic scenes, the three
//!   benchmark corpora, and simulated detector / OCR / depth models.
//! * [`analyze`] ([`deeplens_analyze`]) — ranked lock wrappers (the lockdep
//!   checker behind every lock above) and the `tidy` workspace lint.
//!
//! See `ARCHITECTURE.md` at the repository root for the crate graph, the
//! life of a served query, the copy-on-write snapshot model, the lock
//! order, and the columnar chunk format.
//!
//! # Quickstart
//!
//! The same snippet as the README's quickstart, compile-checked here:
//!
//! ```
//! use deeplens::prelude::*;
//!
//! # fn main() -> Result<(), DlError> {
//! // One in-process engine: a session over a private catalog.
//! let session = Session::ephemeral()?;
//! let patches: Vec<Patch> = (0..64u64)
//!     .map(|i| {
//!         Patch::features(PatchId(i), ImgRef::frame("cam", i / 4), vec![(i % 8) as f32, 1.0])
//!             .with_meta("label", if i % 3 == 0 { "car" } else { "person" })
//!     })
//!     .collect();
//! session.catalog.materialize("dets", patches);
//!
//! // Pack the rows into the chunked columnar layout: selective scans prune
//! // whole chunks via zone maps, and joins run packed when the cost model
//! // prices that under materializing rows.
//! session.build_columnar("dets")?;
//! let recent = session.scan(
//!     "dets",
//!     &ScanFilter::FrameRange { lo: 10, hi: 14 },
//!     Projection::Full,
//! )?;
//! assert_eq!(recent.patches.len(), 16);
//!
//! // A self-similarity join; the planner routes it through the packed or
//! // row-form plan — either way the pairs are byte-identical.
//! let pairs = session.join_collections("dets", "dets", 1.0)?;
//! assert!(!pairs.is_empty());
//! # Ok(())
//! # }
//! ```

pub use deeplens_analyze as analyze;
pub use deeplens_codec as codec;
pub use deeplens_core as core;
pub use deeplens_exec as exec;
pub use deeplens_index as index;
pub use deeplens_serve as serve;
pub use deeplens_storage as storage;
pub use deeplens_vision as vision;

/// Common imports for DeepLens applications (re-export of
/// [`deeplens_core::prelude`]).
pub mod prelude {
    pub use deeplens_core::prelude::*;
}
