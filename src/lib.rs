//! # DeepLens
//!
//! A from-scratch Rust reproduction of **"DeepLens: Towards a Visual Data
//! Management System"** (Krishnan, Dziedzic, Elmore — CIDR 2019).
//!
//! DeepLens manages the outputs of computer-vision models as first-class
//! database content: visual analytics are relational queries over unordered
//! collections of *patches* (featurized sub-images with metadata and
//! lineage), decoupled from physical design decisions — video encoding and
//! layout, device placement, and single-/multi-dimensional indexing.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] ([`deeplens_core`]) — patch model, type system, lineage, ETL,
//!   query operators, catalog, optimizer.
//! * [`storage`] ([`deeplens_storage`]) — pages, buffer pool, WAL, on-disk
//!   B+Tree, hash store, and the Frame/Encoded/Segmented video layouts.
//! * [`codec`] ([`deeplens_codec`]) — block-DCT image codec and
//!   GOP-structured video codec with sequential decode semantics.
//! * [`index`] ([`deeplens_index`]) — Ball-Tree, R-Tree, KD-Tree, LSH,
//!   sorted runs.
//! * [`exec`] ([`deeplens_exec`]) — CPU / vectorized / simulated-GPU
//!   execution backends.
//! * [`serve`] ([`deeplens_serve`]) — TCP query-serving front end:
//!   connection-per-session dispatch over a shared catalog with
//!   cost-weighted admission control.
//! * [`vision`] ([`deeplens_vision`]) — synthetic scenes, the three
//!   benchmark corpora, and simulated detector / OCR / depth models.
//! * [`analyze`] ([`deeplens_analyze`]) — ranked lock wrappers (the lockdep
//!   checker behind every lock above) and the `tidy` workspace lint.
//!
//! ```
//! use deeplens::prelude::*;
//!
//! let mut catalog = Catalog::new();
//! let patches: Vec<Patch> = (0..4)
//!     .map(|i| {
//!         Patch::features(catalog.next_patch_id(), ImgRef::frame("v", i), vec![i as f32])
//!             .with_meta("label", "car")
//!     })
//!     .collect();
//! catalog.materialize("cars", patches);
//! assert_eq!(catalog.collection("cars").unwrap().len(), 4);
//! ```

pub use deeplens_analyze as analyze;
pub use deeplens_codec as codec;
pub use deeplens_core as core;
pub use deeplens_exec as exec;
pub use deeplens_index as index;
pub use deeplens_serve as serve;
pub use deeplens_storage as storage;
pub use deeplens_vision as vision;

/// Common imports for DeepLens applications (re-export of
/// [`deeplens_core::prelude`]).
pub mod prelude {
    pub use deeplens_core::prelude::*;
}
